"""Parity tests: engine-driven training reproduces the pre-refactor learners.

The expected numbers below were captured by running the *seed* (pre-engine)
implementations of ``BaselineCausalModel`` and ``CERL`` on a fixed seed before
the training loops were extracted into ``repro.engine``.  The refactor was
engineered to be numerically indistinguishable (same RNG consumption, same
floating-point expression order), so the engine-driven learners must
reproduce these metrics; a drift here means the refactor changed training
behaviour, not just structure.

Tolerances are tight but not bitwise to stay robust to BLAS differences
across platforms; on the reference container the match is exact.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CERL, BaselineCausalModel
from repro.data import DomainStream

RTOL = 1e-9

# Captured from the seed implementation (commit f4ab382) with the fixture
# configuration: tiny synthetic domains (seed 7), fast model config (seed 3),
# fast continual config (memory_budget=40, rehearsal_batch_size=32).
SEED_BASELINE_HISTORY = [
    2.060997874564727,
    1.630338981267008,
    1.3715809396103233,
    1.283250627930941,
]
SEED_BASELINE_METRICS = {
    "sqrt_pehe": 1.8501054956106415,
    "ate_error": 0.4326157261846202,
    "factual_rmse": 1.7192912257965816,
}
SEED_BASELINE_VAL_HISTORY = [
    2.106706523163863,
    1.6610954397052506,
    1.5399118097377384,
    1.3576364230086313,
    1.2059032710238535,
    1.23401783339258,
    1.036201046481454,
    1.1852020712713258,
]
SEED_BASELINE_VAL_VALIDATION = [
    1.7271934076019253,
    1.481050170724644,
    1.3645020465909172,
    1.3116666719071617,
    1.2881103527774531,
    1.2853793660695705,
    1.2933618008921122,
    1.3077662809995605,
]
SEED_CERL_HIST0 = [
    2.106706523163863,
    1.6610954397052506,
    1.5399118097377384,
    1.3576364230086313,
]
SEED_CERL_HIST1 = [
    3.378694632771868,
    2.974120471511222,
    2.515177250870021,
    2.5975128110715593,
]
SEED_CERL_METRICS_D0 = {
    "sqrt_pehe": 1.9993959552444696,
    "ate_error": 0.3744072425099487,
}
SEED_CERL_METRICS_D1 = {
    "sqrt_pehe": 1.6142801832422249,
    "ate_error": 0.15314846845920593,
}


@pytest.fixture
def stream(tiny_domains):
    return DomainStream(list(tiny_domains), seed=0)


class TestBaselineParity:
    def test_history_matches_seed_values(self, tiny_domains, fast_model_config):
        first, _ = tiny_domains
        model = BaselineCausalModel(first.n_features, fast_model_config)
        history = model.fit(first)
        np.testing.assert_allclose(history.total, SEED_BASELINE_HISTORY, rtol=RTOL)

    def test_metrics_match_seed_values(self, tiny_domains, fast_model_config):
        first, _ = tiny_domains
        model = BaselineCausalModel(first.n_features, fast_model_config)
        model.fit(first)
        metrics = model.evaluate(first)
        for key, expected in SEED_BASELINE_METRICS.items():
            assert metrics[key] == pytest.approx(expected, rel=RTOL), key

    def test_early_stopping_path_matches_seed_values(self, stream, fast_model_config):
        config = fast_model_config.with_updates(epochs=8, early_stopping_patience=2)
        model = BaselineCausalModel(stream.n_features, config)
        history = model.fit(stream.train_data(0), val_dataset=stream.val_data(0))
        np.testing.assert_allclose(history.total, SEED_BASELINE_VAL_HISTORY, rtol=RTOL)
        np.testing.assert_allclose(
            history.validation, SEED_BASELINE_VAL_VALIDATION, rtol=RTOL
        )


class TestCERLParity:
    def test_stream_metrics_match_seed_values(
        self, stream, fast_model_config, fast_continual_config
    ):
        cerl = CERL(stream.n_features, fast_model_config, fast_continual_config)
        cerl.observe(stream.train_data(0), val_dataset=stream.val_data(0))
        cerl.observe(stream.train_data(1), val_dataset=stream.val_data(1))

        np.testing.assert_allclose(cerl.histories[0].total, SEED_CERL_HIST0, rtol=RTOL)
        np.testing.assert_allclose(cerl.histories[1].total, SEED_CERL_HIST1, rtol=RTOL)

        metrics_d0 = cerl.evaluate(stream[0].test)
        metrics_d1 = cerl.evaluate(stream[1].test)
        for key, expected in SEED_CERL_METRICS_D0.items():
            assert metrics_d0[key] == pytest.approx(expected, rel=RTOL), key
        for key, expected in SEED_CERL_METRICS_D1.items():
            assert metrics_d1[key] == pytest.approx(expected, rel=RTOL), key
        assert cerl.memory_size == 40
