"""Fast-path evaluation: graph-free guarantee and batched-evaluation parity.

Two properties of the inference subsystem are pinned here:

* ``predict``/``evaluate``/validation never allocate autograd bookkeeping
  (``_parents``/``_backward``) — a regression here silently re-inflates the
  evaluation memory/time cost the fast path removed;
* ``evaluate_many`` (one concatenated forward pass) returns exactly the
  numbers of per-dataset ``evaluate`` calls, for every learner type.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CERL,
    BaselineCausalModel,
    FeatureTransform,
    OutcomeHeads,
    RepresentationNetwork,
    make_estimator,
)
from repro.data import DomainStream
from repro.nn import Tensor, no_grad


@pytest.fixture
def fitted_baseline(tiny_dataset, fast_model_config):
    model = BaselineCausalModel(tiny_dataset.n_features, fast_model_config)
    model.fit(tiny_dataset, epochs=2)
    return model


@pytest.fixture
def fitted_cerl(tiny_domains, fast_model_config, fast_continual_config):
    stream = DomainStream(list(tiny_domains), seed=0)
    learner = CERL(stream.n_features, fast_model_config, fast_continual_config)
    learner.observe(stream.train_data(0), epochs=2)
    learner.observe(stream.train_data(1), epochs=2)
    return learner, stream


def _install_graph_spy(monkeypatch):
    """Record every Tensor node created with a kept backward closure."""
    recorded = []
    original = Tensor._make

    def spy(data, parents, backward):
        out = original(data, parents, backward)
        if out._backward is not None:
            recorded.append(out)
        return out

    monkeypatch.setattr(Tensor, "_make", staticmethod(spy))
    return recorded


class TestNoGraphDuringEvaluation:
    def test_baseline_evaluate_allocates_no_graph(
        self, monkeypatch, fitted_baseline, tiny_dataset
    ):
        recorded = _install_graph_spy(monkeypatch)
        fitted_baseline.evaluate(tiny_dataset)
        fitted_baseline.predict(tiny_dataset.covariates)
        fitted_baseline.validation_loss(tiny_dataset)
        assert recorded == []

    def test_cerl_evaluate_allocates_no_graph(self, monkeypatch, fitted_cerl):
        learner, stream = fitted_cerl
        recorded = _install_graph_spy(monkeypatch)
        learner.evaluate(stream[0].test)
        learner.evaluate_many(stream.test_sets_seen(1))
        learner.predict(stream[1].test.covariates)
        assert recorded == []

    def test_training_still_records_graphs(self, monkeypatch, tiny_dataset, fast_model_config):
        recorded = _install_graph_spy(monkeypatch)
        model = BaselineCausalModel(tiny_dataset.n_features, fast_model_config)
        model.fit(tiny_dataset, epochs=1)
        assert recorded  # sanity: the spy does observe the training pass


class TestComponentInferParity:
    def test_representation_network_infer_matches_forward(self, rng):
        for cosine in (True, False):
            net = RepresentationNetwork(
                10, 6, hidden_sizes=(12,), use_cosine_norm=cosine,
                rng=np.random.default_rng(1),
            )
            covariates = rng.normal(size=(50, 10))
            net.fit_scaler(covariates)
            inputs = net.prepare_inputs(covariates)
            with no_grad():
                expected = net.forward(Tensor(inputs)).data
            np.testing.assert_array_equal(net.infer(inputs), expected)

    def test_outcome_heads_infer_matches_tensor_path(self, rng):
        heads = OutcomeHeads(6, hidden_sizes=(8,), rng=np.random.default_rng(2))
        reps = rng.normal(size=(40, 6))
        treatments = (rng.random(40) > 0.5).astype(np.int64)
        y0_ref, y1_ref = heads.potential_outcomes(Tensor(reps))
        y0, y1 = heads.infer_potential_outcomes(reps)
        np.testing.assert_array_equal(y0, y0_ref)
        np.testing.assert_array_equal(y1, y1_ref)
        with no_grad():
            factual_ref = heads.factual(Tensor(reps), treatments).data
        np.testing.assert_array_equal(heads.infer_factual(reps, treatments), factual_ref)

    def test_feature_transform_infer_matches_forward(self, rng):
        for residual in (True, False):
            for normalize in (True, False):
                transform = FeatureTransform(
                    6, hidden_sizes=(8,), residual=residual,
                    normalize_output=normalize, rng=np.random.default_rng(3),
                )
                reps = rng.normal(size=(30, 6))
                with no_grad():
                    expected = transform.forward(Tensor(reps)).data
                np.testing.assert_array_equal(transform.infer(reps), expected)
                np.testing.assert_array_equal(transform.transform_array(reps), expected)

    def test_representations_returns_a_stable_copy(self, rng):
        net = RepresentationNetwork(5, 4, hidden_sizes=(6,), rng=np.random.default_rng(4))
        covariates = rng.normal(size=(20, 5))
        net.fit_scaler(covariates)
        first = net.representations(covariates)
        snapshot = first.copy()
        net.representations(rng.normal(size=(20, 5)))  # overwrites workspaces
        np.testing.assert_array_equal(first, snapshot)


class TestEvaluateManyParity:
    def test_baseline_matches_per_dataset_evaluate(self, fitted_baseline, tiny_domains):
        datasets = list(tiny_domains)
        batched = fitted_baseline.evaluate_many(datasets)
        serial = [fitted_baseline.evaluate(dataset) for dataset in datasets]
        assert batched == serial

    def test_cerl_matches_per_dataset_evaluate(self, fitted_cerl):
        learner, stream = fitted_cerl
        seen = stream.test_sets_seen(1)
        batched = learner.evaluate_many(seen)
        serial = [learner.evaluate(test_set) for test_set in seen]
        assert batched == serial
        assert learner.evaluate_stream(seen) == serial

    def test_strategy_delegates_to_model(self, tiny_domains, fast_model_config):
        strategy = make_estimator("CFR-B", tiny_domains[0].n_features, fast_model_config)
        strategy.observe(tiny_domains[0], epochs=2)
        strategy.observe(tiny_domains[1], epochs=2)
        datasets = list(tiny_domains)
        assert strategy.evaluate_many(datasets) == [
            strategy.evaluate(dataset) for dataset in datasets
        ]

    def test_empty_input_returns_empty_list(self, fitted_baseline):
        assert fitted_baseline.evaluate_many([]) == []

    def test_missing_counterfactuals_raise(self, fitted_baseline, tiny_dataset):
        from repro.data import CausalDataset

        no_cf = CausalDataset(
            covariates=tiny_dataset.covariates,
            treatments=tiny_dataset.treatments,
            outcomes=tiny_dataset.outcomes,
            name="no-cf",
        )
        with pytest.raises(ValueError, match="no-cf"):
            fitted_baseline.evaluate_many([tiny_dataset, no_cf])
