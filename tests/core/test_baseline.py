"""Tests for the baseline causal-effect learning model (Eq. 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BaselineCausalModel, ModelConfig
from repro.data import DomainStream


@pytest.fixture
def split(tiny_dataset):
    stream = DomainStream([tiny_dataset], seed=0)
    return stream[0]


class TestTraining:
    def test_loss_decreases_over_training(self, tiny_dataset, fast_model_config):
        model = BaselineCausalModel(tiny_dataset.n_features, fast_model_config)
        history = model.fit(tiny_dataset, epochs=10)
        assert len(history) == 10
        assert history.total[-1] < history.total[0]

    def test_history_components_recorded(self, tiny_dataset, fast_model_config):
        model = BaselineCausalModel(tiny_dataset.n_features, fast_model_config)
        history = model.fit(tiny_dataset, epochs=3)
        assert len(history.factual) == 3
        assert len(history.ipm) == 3
        assert len(history.regularization) == 3
        assert all(np.isfinite(history.total))

    def test_ipm_term_skipped_when_alpha_zero(self, tiny_dataset, fast_model_config):
        config = fast_model_config.with_updates(alpha=0.0)
        model = BaselineCausalModel(tiny_dataset.n_features, config)
        history = model.fit(tiny_dataset, epochs=2)
        assert all(value == 0.0 for value in history.ipm)

    def test_early_stopping_restores_best_state(self, split, fast_model_config):
        config = fast_model_config.with_updates(epochs=40, early_stopping_patience=3)
        model = BaselineCausalModel(split.train.n_features, config)
        history = model.fit(split.train, val_dataset=split.val)
        assert len(history.validation) == len(history)
        # the restored model's validation loss equals the best recorded value
        assert model.validation_loss(split.val) == pytest.approx(min(history.validation), rel=1e-6)

    def test_early_stopping_can_stop_before_epoch_budget(self, split, fast_model_config):
        config = fast_model_config.with_updates(epochs=200, early_stopping_patience=2)
        model = BaselineCausalModel(split.train.n_features, config)
        history = model.fit(split.train, val_dataset=split.val)
        assert len(history) < 200
        assert history.stopped_early

    def test_fine_tune_continues_training(self, tiny_domains, fast_model_config):
        first, second = tiny_domains
        model = BaselineCausalModel(first.n_features, fast_model_config)
        model.fit(first, epochs=3)
        before = model.encoder.state_dict()
        model.fine_tune(second, epochs=3)
        after = model.encoder.state_dict()
        assert any(not np.allclose(before[k], after[k]) for k in before)

    def test_fine_tune_before_fit_raises(self, tiny_dataset, fast_model_config):
        model = BaselineCausalModel(tiny_dataset.n_features, fast_model_config)
        with pytest.raises(RuntimeError):
            model.fine_tune(tiny_dataset)

    def test_dataset_validation(self, tiny_dataset, fast_model_config):
        model = BaselineCausalModel(tiny_dataset.n_features + 1, fast_model_config)
        with pytest.raises(ValueError):
            model.fit(tiny_dataset)

    def test_single_arm_dataset_rejected(self, tiny_dataset, fast_model_config):
        all_treated = tiny_dataset.subset(np.flatnonzero(tiny_dataset.treatments == 1))
        model = BaselineCausalModel(tiny_dataset.n_features, fast_model_config)
        with pytest.raises(ValueError):
            model.fit(all_treated)

    def test_invalid_n_features(self, fast_model_config):
        with pytest.raises(ValueError):
            BaselineCausalModel(0, fast_model_config)


class TestInference:
    def test_predict_before_fit_raises(self, tiny_dataset, fast_model_config):
        model = BaselineCausalModel(tiny_dataset.n_features, fast_model_config)
        with pytest.raises(RuntimeError):
            model.predict(tiny_dataset.covariates)

    def test_predict_shapes(self, tiny_dataset, fast_model_config):
        model = BaselineCausalModel(tiny_dataset.n_features, fast_model_config)
        model.fit(tiny_dataset, epochs=2)
        estimate = model.predict(tiny_dataset.covariates)
        assert estimate.y0_hat.shape == (len(tiny_dataset),)
        assert estimate.y1_hat.shape == (len(tiny_dataset),)

    def test_predictions_on_outcome_scale(self, tiny_dataset, fast_model_config):
        """Predictions must be un-standardised back to the raw outcome scale."""
        model = BaselineCausalModel(tiny_dataset.n_features, fast_model_config)
        model.fit(tiny_dataset, epochs=8)
        estimate = model.predict(tiny_dataset.covariates)
        predicted_mean = estimate.factual_predictions(tiny_dataset.treatments).mean()
        assert abs(predicted_mean - tiny_dataset.outcomes.mean()) < 2.0 * tiny_dataset.outcomes.std()

    def test_evaluate_returns_paper_metrics(self, split, fast_model_config):
        model = BaselineCausalModel(split.train.n_features, fast_model_config)
        model.fit(split.train, epochs=4)
        metrics = model.evaluate(split.test)
        for key in ("sqrt_pehe", "ate_error", "factual_rmse", "ate_hat", "ate_true"):
            assert key in metrics
            assert np.isfinite(metrics[key])

    def test_evaluate_requires_counterfactuals(self, tiny_dataset, fast_model_config):
        from repro.data import CausalDataset

        model = BaselineCausalModel(tiny_dataset.n_features, fast_model_config)
        model.fit(tiny_dataset, epochs=2)
        stripped = CausalDataset(
            tiny_dataset.covariates, tiny_dataset.treatments, tiny_dataset.outcomes
        )
        with pytest.raises(ValueError):
            model.evaluate(stripped)

    def test_extract_representations_shape_and_norm(self, tiny_dataset, fast_model_config):
        model = BaselineCausalModel(tiny_dataset.n_features, fast_model_config)
        model.fit(tiny_dataset, epochs=2)
        reps = model.extract_representations(tiny_dataset.covariates)
        assert reps.shape == (len(tiny_dataset), fast_model_config.representation_dim)
        np.testing.assert_allclose(np.linalg.norm(reps, axis=1), 1.0, atol=1e-8)

    def test_training_learns_something(self, split):
        """With enough epochs the learner should beat the best constant-effect
        predictor on factual outcomes."""
        config = ModelConfig(
            representation_dim=16,
            encoder_hidden=(32,),
            outcome_hidden=(16,),
            epochs=60,
            batch_size=64,
            sinkhorn_iterations=10,
            seed=0,
        )
        model = BaselineCausalModel(split.train.n_features, config)
        model.fit(split.train, val_dataset=split.val)
        metrics = model.evaluate(split.train)
        # predicting the training outcome mean would give RMSE == std of outcomes
        assert metrics["factual_rmse"] < split.train.outcomes.std()

    def test_reproducible_given_seed(self, tiny_dataset, fast_model_config):
        model_a = BaselineCausalModel(tiny_dataset.n_features, fast_model_config)
        model_a.fit(tiny_dataset, epochs=3)
        model_b = BaselineCausalModel(tiny_dataset.n_features, fast_model_config)
        model_b.fit(tiny_dataset, epochs=3)
        np.testing.assert_allclose(
            model_a.predict(tiny_dataset.covariates).ite_hat,
            model_b.predict(tiny_dataset.covariates).ite_hat,
        )
