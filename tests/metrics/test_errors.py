"""Tests for the treatment-effect and continual-learning metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.metrics import (
    EffectEstimate,
    ate_error,
    average_over_domains,
    evaluate_effect_estimate,
    factual_rmse,
    forgetting,
    pehe,
    sqrt_pehe,
)
from repro.utils import Standardizer


class TestPEHEAndATE:
    def test_perfect_estimate_gives_zero(self):
        ite = np.array([1.0, 2.0, 3.0])
        assert pehe(ite, ite) == pytest.approx(0.0)
        assert sqrt_pehe(ite, ite) == pytest.approx(0.0)
        assert ate_error(ite, ite) == pytest.approx(0.0)

    def test_known_values(self):
        true = np.array([1.0, 1.0])
        estimated = np.array([0.0, 3.0])
        assert pehe(true, estimated) == pytest.approx((1 + 4) / 2)
        assert sqrt_pehe(true, estimated) == pytest.approx(np.sqrt(2.5))
        assert ate_error(true, estimated) == pytest.approx(0.5)

    def test_ate_error_is_absolute(self):
        assert ate_error(np.array([2.0]), np.array([5.0])) == ate_error(
            np.array([5.0]), np.array([2.0])
        )

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            pehe(np.zeros(3), np.zeros(4))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            pehe(np.array([]), np.array([]))

    def test_factual_rmse_known_value(self):
        assert factual_rmse(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(
            np.sqrt(12.5)
        )

    @given(
        arrays(np.float64, st.integers(1, 50), elements=st.floats(-10, 10, allow_nan=False)),
        st.floats(-5, 5, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_constant_bias_property(self, ite, bias):
        """Adding a constant bias b to every ITE estimate gives ATE error |b|
        and sqrt(PEHE) |b|."""
        shifted = ite + bias
        assert ate_error(ite, shifted) == pytest.approx(abs(bias), abs=1e-8)
        assert sqrt_pehe(ite, shifted) == pytest.approx(abs(bias), abs=1e-8)

    @given(
        arrays(np.float64, st.integers(2, 40), elements=st.floats(-10, 10, allow_nan=False)),
        arrays(np.float64, st.integers(2, 40), elements=st.floats(-10, 10, allow_nan=False)),
    )
    @settings(max_examples=40, deadline=None)
    def test_pehe_dominates_squared_ate_error(self, true, estimated):
        """PEHE >= (ATE error)^2 by Jensen's inequality."""
        n = min(len(true), len(estimated))
        true, estimated = true[:n], estimated[:n]
        assert pehe(true, estimated) + 1e-9 >= ate_error(true, estimated) ** 2


class TestEffectEstimate:
    def test_ite_and_ate(self):
        estimate = EffectEstimate(y0_hat=np.array([1.0, 2.0]), y1_hat=np.array([3.0, 5.0]))
        np.testing.assert_allclose(estimate.ite_hat, [2.0, 3.0])
        assert estimate.ate_hat == pytest.approx(2.5)

    def test_factual_predictions_select_by_treatment(self):
        estimate = EffectEstimate(y0_hat=np.array([1.0, 2.0]), y1_hat=np.array([10.0, 20.0]))
        factual = estimate.factual_predictions(np.array([1, 0]))
        np.testing.assert_allclose(factual, [10.0, 2.0])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            EffectEstimate(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            EffectEstimate(np.zeros(3), np.zeros(3)).factual_predictions(np.zeros(2))

    def test_evaluate_effect_estimate_keys(self):
        estimate = EffectEstimate(np.zeros(4), np.ones(4))
        metrics = evaluate_effect_estimate(
            estimate,
            true_ite=np.ones(4),
            treatments=np.array([0, 1, 0, 1]),
            factual_outcomes=np.array([0.0, 1.0, 0.0, 1.0]),
        )
        assert metrics["sqrt_pehe"] == pytest.approx(0.0)
        assert metrics["ate_error"] == pytest.approx(0.0)
        assert metrics["factual_rmse"] == pytest.approx(0.0)
        assert metrics["ate_true"] == pytest.approx(1.0)

    def test_evaluate_without_outcomes_omits_factual_rmse(self):
        estimate = EffectEstimate(np.zeros(4), np.ones(4))
        metrics = evaluate_effect_estimate(estimate, true_ite=np.ones(4))
        assert "factual_rmse" not in metrics


class TestContinualMetrics:
    def test_forgetting_positive_when_metric_worsens(self):
        history = [[1.0], [1.5, 1.0]]
        assert forgetting(history) == pytest.approx(0.5)

    def test_forgetting_zero_for_single_domain(self):
        assert forgetting([[1.0]]) == 0.0

    def test_forgetting_uses_best_seen_value(self):
        history = [[2.0], [1.0, 1.2], [1.8, 1.3, 1.1]]
        # best for domain0 is 1.0, final is 1.8 -> 0.8; domain1 best 1.2, final 1.3 -> 0.1
        assert forgetting(history) == pytest.approx((0.8 + 0.1) / 2)

    def test_forgetting_empty_raises(self):
        with pytest.raises(ValueError):
            forgetting([])

    def test_average_over_domains(self):
        merged = average_over_domains([{"a": 1.0, "b": 2.0}, {"a": 3.0, "b": 4.0}])
        assert merged == {"a": 2.0, "b": 3.0}

    def test_average_over_domains_intersects_keys(self):
        merged = average_over_domains([{"a": 1.0, "b": 2.0}, {"a": 3.0}])
        assert merged == {"a": 2.0}

    def test_average_over_domains_empty_raises(self):
        with pytest.raises(ValueError):
            average_over_domains([])


class TestStandardizer:
    def test_round_trip(self, rng):
        values = rng.normal(5.0, 3.0, size=(40, 3))
        scaler = Standardizer().fit(values)
        transformed = scaler.transform(values)
        np.testing.assert_allclose(transformed.mean(axis=0), np.zeros(3), atol=1e-9)
        np.testing.assert_allclose(transformed.std(axis=0), np.ones(3), atol=1e-9)
        np.testing.assert_allclose(scaler.inverse_transform(transformed), values, atol=1e-9)

    def test_one_dimensional_input(self, rng):
        values = rng.normal(size=30)
        scaler = Standardizer().fit(values)
        out = scaler.transform(values)
        assert out.shape == (30,)
        np.testing.assert_allclose(scaler.inverse_transform(out), values, atol=1e-9)

    def test_constant_column_is_safe(self):
        values = np.column_stack([np.ones(10), np.arange(10.0)])
        transformed = Standardizer().fit_transform(values)
        assert np.all(np.isfinite(transformed))
        np.testing.assert_allclose(transformed[:, 0], np.zeros(10))

    def test_zero_variance_scale_is_one_not_zero(self):
        """Degenerate columns must get scale exactly 1.0 — a 0 scale would
        divide by zero on transform and collapse inverse_transform."""
        scaler = Standardizer().fit(np.full((8, 2), 3.5))
        np.testing.assert_array_equal(scaler.std_, np.ones(2))
        out = scaler.transform(np.full((4, 2), 3.5))
        np.testing.assert_array_equal(out, np.zeros((4, 2)))
        np.testing.assert_array_equal(scaler.inverse_transform(out), np.full((4, 2), 3.5))

    def test_single_row_fit_is_safe(self):
        """A one-unit split (the smallest a valid split can produce) has zero
        variance in every column; transforms must stay finite."""
        scaler = Standardizer().fit(np.array([[2.0, -1.0]]))
        np.testing.assert_array_equal(scaler.std_, np.ones(2))
        assert np.all(np.isfinite(scaler.transform(np.array([[4.0, 0.0]]))))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            Standardizer().transform(np.ones(3))

    def test_empty_fit_raises(self):
        with pytest.raises(ValueError):
            Standardizer().fit(np.zeros((0, 3)))
