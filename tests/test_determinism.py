"""Bit-reproducibility: identical seeds must give identical runs.

Covers the deterministic-seeding plumbing through ``DomainStream``,
``minibatches`` and the engine-driven learners (the property
``examples/quickstart.py`` relies on).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np

from repro.core import CERL, BaselineCausalModel
from repro.data import DomainStream
from repro.data.dataset import minibatches

_SRC = str(Path(__file__).resolve().parent.parent / "src")


class TestMinibatchDeterminism:
    def test_same_rng_seed_gives_same_batches(self):
        batches_a = list(minibatches(50, 16, rng=np.random.default_rng(5)))
        batches_b = list(minibatches(50, 16, rng=np.random.default_rng(5)))
        for a, b in zip(batches_a, batches_b):
            np.testing.assert_array_equal(a, b)

    def test_seed_parameter_is_deterministic(self):
        batches_a = list(minibatches(50, 16, seed=9))
        batches_b = list(minibatches(50, 16, seed=9))
        for a, b in zip(batches_a, batches_b):
            np.testing.assert_array_equal(a, b)

    def test_default_reshuffles_across_epochs(self):
        # No rng, no seed: the process-wide fallback generator advances, so
        # two consecutive calls (epochs) see different permutations.
        flat_a = np.concatenate(list(minibatches(64, 16)))
        flat_b = np.concatenate(list(minibatches(64, 16)))
        assert not np.array_equal(flat_a, flat_b)
        np.testing.assert_array_equal(np.sort(flat_a), np.arange(64))
        np.testing.assert_array_equal(np.sort(flat_b), np.arange(64))

    def test_default_is_reproducible_run_to_run(self):
        # The fallback generator is seeded, not OS-entropy: a fresh process
        # always produces the same batch sequence.
        code = (
            "from repro.data.dataset import minibatches;"
            "print([b.tolist() for _ in range(3) for b in minibatches(16, 8)])"
        )
        env = dict(os.environ, PYTHONPATH=_SRC)
        runs = [
            subprocess.run(
                [sys.executable, "-c", code], capture_output=True, text=True, env=env
            ).stdout
            for _ in range(2)
        ]
        assert runs[0] == runs[1] != ""


class TestStreamDeterminism:
    def test_same_seed_same_splits(self, tiny_domains):
        stream_a = DomainStream(list(tiny_domains), seed=3)
        stream_b = DomainStream(list(tiny_domains), seed=3)
        for split_a, split_b in zip(stream_a, stream_b):
            np.testing.assert_array_equal(
                split_a.train.covariates, split_b.train.covariates
            )
            np.testing.assert_array_equal(split_a.test.outcomes, split_b.test.outcomes)
        assert stream_a.seed == 3

    def test_different_seed_different_splits(self, tiny_domains):
        stream_a = DomainStream(list(tiny_domains), seed=3)
        stream_b = DomainStream(list(tiny_domains), seed=4)
        assert not np.array_equal(
            stream_a[0].train.covariates, stream_b[0].train.covariates
        )


class TestTrainingDeterminism:
    def test_baseline_training_is_bitwise_reproducible(self, tiny_dataset, fast_model_config):
        histories = []
        predictions = []
        for _ in range(2):
            model = BaselineCausalModel(tiny_dataset.n_features, fast_model_config)
            history = model.fit(tiny_dataset, epochs=3)
            histories.append(list(history.total))
            predictions.append(model.predict(tiny_dataset.covariates).y1_hat)
        assert histories[0] == histories[1]
        np.testing.assert_array_equal(predictions[0], predictions[1])

    def test_cerl_two_domain_run_is_bitwise_reproducible(
        self, tiny_domains, fast_model_config, fast_continual_config
    ):
        results = []
        for _ in range(2):
            stream = DomainStream(list(tiny_domains), seed=0)
            cerl = CERL(stream.n_features, fast_model_config, fast_continual_config)
            cerl.observe(stream.train_data(0), epochs=2)
            cerl.observe(stream.train_data(1), epochs=2)
            results.append(cerl.evaluate(stream[1].test))
        assert results[0] == results[1]
