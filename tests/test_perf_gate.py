"""Tests for the CI perf-regression gate (``benchmarks/check_regression.py``)."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_regression",
    Path(__file__).resolve().parents[1] / "benchmarks" / "check_regression.py",
)
check_regression = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_regression)


def payload(**speedups) -> dict:
    sections = {name: {"speedup": value, "workload": "w"} for name, value in speedups.items()}
    return {"generated_by": "test", "python": "3.x", **sections}


def slo_payload(**metrics) -> dict:
    """Sections in the SLO dialect: an explicit ``gate_metric`` per section."""
    sections = {
        name: {"gate_metric": f"{name}_rate", f"{name}_rate": value, "workload": "w"}
        for name, value in metrics.items()
    }
    return {"generated_by": "test", "python": "3.x", **sections}


class TestCompare:
    def test_passes_when_nothing_degrades(self):
        failures, report = check_regression.compare(
            payload(a=2.0, b=10.0), payload(a=2.5, b=10.0), tolerance=0.2
        )
        assert failures == []
        assert all(line.startswith("ok") for line in report)

    def test_degradation_within_tolerance_passes(self):
        failures, _ = check_regression.compare(
            payload(a=2.0), payload(a=1.7), tolerance=0.2  # floor 1.6
        )
        assert failures == []

    def test_degradation_beyond_tolerance_fails(self):
        failures, _ = check_regression.compare(
            payload(a=2.0), payload(a=1.5), tolerance=0.2  # floor 1.6
        )
        assert len(failures) == 1 and "a:" in failures[0]

    def test_tolerance_zero_fails_on_any_degradation(self):
        """The acceptance knob: tolerance 0 turns the gate strict."""
        failures, _ = check_regression.compare(
            payload(a=2.0), payload(a=1.999), tolerance=0.0
        )
        assert len(failures) == 1
        failures, _ = check_regression.compare(
            payload(a=2.0), payload(a=2.0), tolerance=0.0
        )
        assert failures == []

    def test_missing_section_fails(self):
        failures, _ = check_regression.compare(
            payload(a=2.0, gone=3.0), payload(a=2.0), tolerance=0.2
        )
        assert len(failures) == 1 and "gone" in failures[0]

    def test_new_ungated_section_is_reported_not_gated(self):
        failures, report = check_regression.compare(
            payload(a=2.0), payload(a=2.0, fresh=0.1), tolerance=0.2
        )
        assert failures == []
        assert any(line.startswith("new  fresh") for line in report)

    def test_sections_without_speedup_are_ignored(self):
        baseline = {**payload(a=2.0), "cerl_stage": {"seconds": 0.1}}
        current = {**payload(a=2.0), "cerl_stage": {"seconds": 99.0}}
        failures, _ = check_regression.compare(baseline, current, tolerance=0.0)
        assert failures == []

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            check_regression.compare(payload(a=1.0), payload(a=1.0), tolerance=-0.1)


class TestGatedSections:
    def gated(self, name: str, reason: str = "cpu_count=1") -> dict:
        return {name: {"gated": True, "gate_reason": reason, "workload": "w"}}

    def test_gated_current_section_is_skipped_not_failed(self):
        # A 1-core runner records "gated": true instead of a speedup; the
        # gate must treat the baseline section as skipped, not missing.
        failures, report = check_regression.compare(
            payload(a=2.0, pool=1.5),
            {**payload(a=2.0), **self.gated("pool", "cpu_count=1 cannot parallelise")},
            tolerance=0.2,
        )
        assert failures == []
        skip_lines = [line for line in report if line.startswith("skip pool")]
        assert len(skip_lines) == 1
        assert "cpu_count=1" in skip_lines[0]

    def test_gated_skip_is_visible_in_report(self):
        # A machine that gates everything must still be loud about it.
        _, report = check_regression.compare(
            payload(pool=1.5), self.gated("pool"), tolerance=0.2
        )
        assert any("gated by the benchmark" in line for line in report)

    def test_section_with_speedup_and_gated_flag_is_still_gated(self):
        # Recording both a speedup and "gated": true is contradictory; the
        # speedup wins so a benchmark cannot smuggle a regression through by
        # also flagging itself gated.
        current = {**payload(pool=0.4)}
        current["pool"]["gated"] = True
        failures, _ = check_regression.compare(payload(pool=1.5), current, tolerance=0.2)
        assert len(failures) == 1 and "pool" in failures[0]

    def test_absent_section_without_gated_flag_still_fails(self):
        failures, _ = check_regression.compare(
            payload(pool=1.5), payload(a=2.0), tolerance=0.2
        )
        assert len(failures) == 1 and "pool" in failures[0]

    def test_gated_false_is_not_a_gate(self):
        current = payload(a=2.0)
        current["a"]["gated"] = False
        assert check_regression.gated_sections(current) == set()


class TestGateMetric:
    """Sections that declare their gated metric via ``"gate_metric"``."""

    def test_pass_fail_and_missing(self):
        failures, report = check_regression.compare(
            slo_payload(avail=1.0), slo_payload(avail=0.9), tolerance=0.2
        )
        assert failures == []
        assert any("avail_rate" in line for line in report)  # unit names the metric
        failures, _ = check_regression.compare(
            slo_payload(avail=1.0), slo_payload(avail=0.5), tolerance=0.2
        )
        assert len(failures) == 1 and "avail" in failures[0]
        failures, _ = check_regression.compare(
            slo_payload(avail=1.0), slo_payload(other=1.0), tolerance=0.2
        )
        assert len(failures) == 1 and "missing" in failures[0]

    def test_machine_gated_section_omits_the_value_and_is_skipped(self):
        current = {
            "generated_by": "test",
            "avail": {"gate_metric": "avail_rate", "gated": True, "gate_reason": "1 core"},
        }
        failures, report = check_regression.compare(
            slo_payload(avail=1.0), current, tolerance=0.2
        )
        assert failures == []
        assert any(line.startswith("skip avail") and "1 core" in line for line in report)

    def test_value_wins_over_the_gated_flag(self):
        current = slo_payload(avail=0.1)
        current["avail"]["gated"] = True
        failures, _ = check_regression.compare(
            slo_payload(avail=1.0), current, tolerance=0.2
        )
        assert len(failures) == 1 and "avail" in failures[0]

    def test_baseline_without_a_value_is_skipped_loudly(self):
        baseline = {
            "generated_by": "test",
            "avail": {"gate_metric": "avail_rate", "gated": True, "gate_reason": "1 core"},
        }
        failures, report = check_regression.compare(
            baseline, slo_payload(avail=1.0), tolerance=0.2
        )
        assert failures == []
        assert any("baseline carries no avail_rate" in line for line in report)


class TestMain:
    def _write(self, path: Path, data: dict) -> Path:
        path.write_text(json.dumps(data))
        return path

    def _args(self, tmp_path, baseline) -> list:
        # Hermetic defaults: point --slo-current at a path that cannot exist
        # so a BENCH_slo.json at the repo root never leaks into these tests.
        return [
            "--baseline", str(baseline),
            "--slo-current", str(tmp_path / "absent_slo.json"),
            "--tolerance", "0.2",
        ]

    def test_end_to_end_pass_and_fail(self, tmp_path, capsys):
        baseline = self._write(tmp_path / "base.json", payload(a=2.0))
        good = self._write(tmp_path / "good.json", payload(a=2.1))
        bad = self._write(tmp_path / "bad.json", payload(a=1.0))
        args = self._args(tmp_path, baseline)
        assert check_regression.main(args + ["--current", str(good)]) == 0
        assert "perf gate passed" in capsys.readouterr().out
        assert check_regression.main(args + ["--current", str(bad)]) == 1
        assert "perf gate FAILED" in capsys.readouterr().err

    def test_missing_file_is_a_distinct_error(self, tmp_path, capsys):
        baseline = self._write(tmp_path / "base.json", payload(a=2.0))
        code = check_regression.main(
            self._args(tmp_path, baseline) + ["--current", str(tmp_path / "nope.json")]
        )
        assert code == 2
        assert "not found" in capsys.readouterr().err

    def test_missing_slo_file_is_a_skip_by_default(self, tmp_path, capsys):
        baseline = self._write(tmp_path / "base.json", payload(a=2.0))
        current = self._write(tmp_path / "cur.json", payload(a=2.0))
        args = self._args(tmp_path, baseline) + ["--current", str(current)]
        assert check_regression.main(args) == 0
        assert "skipping the SLO gate" in capsys.readouterr().out

    def test_require_slo_turns_the_skip_into_an_error(self, tmp_path, capsys):
        baseline = self._write(tmp_path / "base.json", payload(a=2.0))
        current = self._write(tmp_path / "cur.json", payload(a=2.0))
        args = self._args(tmp_path, baseline) + ["--current", str(current)]
        assert check_regression.main(args + ["--require-slo"]) == 2
        assert "slo current file not found" in capsys.readouterr().err

    def test_slo_pair_is_gated_when_present(self, tmp_path, capsys):
        baseline = self._write(tmp_path / "base.json", payload(a=2.0))
        current = self._write(tmp_path / "cur.json", payload(a=2.0))
        slo_base = self._write(tmp_path / "slo_base.json", slo_payload(avail=1.0))
        args = [
            "--baseline", str(baseline),
            "--current", str(current),
            "--slo-baseline", str(slo_base),
            "--tolerance", "0.2",
        ]
        good = self._write(tmp_path / "slo_good.json", slo_payload(avail=1.0))
        assert check_regression.main(args + ["--slo-current", str(good)]) == 0
        out = capsys.readouterr().out
        assert "slo_good.json" in out and "perf gate passed" in out
        # An SLO regression fails the run even though the engine pair passes.
        bad = self._write(tmp_path / "slo_bad.json", slo_payload(avail=0.2))
        assert check_regression.main(args + ["--slo-current", str(bad)]) == 1
        assert "avail" in capsys.readouterr().err

    def test_slo_current_without_a_baseline_is_an_error(self, tmp_path, capsys):
        baseline = self._write(tmp_path / "base.json", payload(a=2.0))
        current = self._write(tmp_path / "cur.json", payload(a=2.0))
        slo_current = self._write(tmp_path / "slo.json", slo_payload(avail=1.0))
        code = check_regression.main(
            [
                "--baseline", str(baseline),
                "--current", str(current),
                "--slo-baseline", str(tmp_path / "no_base.json"),
                "--slo-current", str(slo_current),
            ]
        )
        assert code == 2
        assert "slo baseline file not found" in capsys.readouterr().err

    def test_repo_baseline_is_well_formed(self):
        """The committed baseline must parse and gate at least the original
        engine sections — the CI step depends on it.  (Deliberately does NOT
        compare against BENCH_engine.json: that artifact is regenerated with
        machine-dependent numbers by any local benchmark run, and gating it
        here would make the unit suite flaky on slow machines.)"""
        root = Path(__file__).resolve().parents[1]
        baseline = json.loads((root / "benchmarks/baseline/BENCH_baseline.json").read_text())
        speedups = check_regression.load_speedups(baseline)
        assert {
            "backward_pass",
            "sinkhorn",
            "serve_throughput",
            "gateway_throughput",
            "gateway_cache",
            "gateway_multiproc",
        } <= set(speedups)
        assert all(value > 0 for value in speedups.values())

    def test_repo_slo_baseline_is_well_formed(self):
        """The committed SLO floor must declare a metric per section, and the
        contract metrics (recovery, bitwise parity) must demand perfection."""
        root = Path(__file__).resolve().parents[1]
        baseline = json.loads(
            (root / "benchmarks/baseline/BENCH_slo_baseline.json").read_text()
        )
        metrics = check_regression.load_metrics(baseline)
        assert {
            "slo_throughput",
            "slo_availability",
            "slo_recovery",
            "slo_verification",
        } <= set(metrics)
        assert all(value is not None for _, value in metrics.values())
        assert metrics["slo_recovery"] == ("recovered_fraction", 1.0)
        assert metrics["slo_verification"] == ("verified", 1.0)
