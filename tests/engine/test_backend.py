"""TapeExecutor behaviour: compile/replay lifecycle, re-traces, fallbacks.

The executor must compile once per (feed-signature, parameter-identity) key,
replay allocation-free while the signature is stable, re-trace when the batch
shape or the parameter list changes, and fall back to an eager evaluation —
bit-identical, including restored RNG state — when a baked branch predicate
flips for a minibatch.
"""

from __future__ import annotations

import numpy as np

from repro.engine import EagerEnv, LossBundle, TraceableLoss
from repro.nn import MLP, Dropout, Linear, Sequential, mse_loss


def _make_problem(n: int = 48, n_features: int = 4, dropout: float = 0.0, seed: int = 5):
    rng = np.random.default_rng(seed)
    if dropout > 0.0:
        model = Sequential(
            Linear(n_features, 8, rng=rng), Dropout(dropout, rng=rng), Linear(8, 1, rng=rng)
        )
    else:
        model = MLP(n_features, (8,), 1, activation="elu", rng=rng)
    data_rng = np.random.default_rng(1)
    inputs = data_rng.normal(size=(n, n_features))
    targets = data_rng.normal(size=n)
    treatments = data_rng.integers(0, 2, size=n)

    def program(env):
        x = env.tensor("x")
        y = env.tensor("y")
        predictions = model.forward(x).reshape(-1)
        bundle = LossBundle()
        bundle.add("mse", mse_loss(predictions, y))
        treated = env.flatnonzero_eq(env.array("treatments"), 1)
        control = env.flatnonzero_eq(env.array("treatments"), 0)
        if env.guard(lambda t, c: t.size > 1 and c.size > 1, treated, control):
            gap = env.take_rows(predictions, treated).mean() - env.take_rows(
                predictions, control
            ).mean()
            bundle.add("gap", gap * gap, weight=0.5)
        return bundle

    def feeds(batch):
        return {
            "x": inputs[batch],
            "y": targets[batch],
            "treatments": treatments[batch],
        }

    params = model.parameters()
    loss = TraceableLoss(program, feeds, parameters=lambda: params)
    return loss, model, treatments


class TestCompileReplayLifecycle:
    def test_compiles_once_then_replays(self):
        loss, model, _ = _make_problem()
        executor = loss.bind("tape")
        eager_twin, twin_model, _ = _make_problem()
        batches = [np.arange(8) + i for i in range(5)]
        for batch in batches:
            result = executor(batch)
            expected = eager_twin.eager_result(batch)
            assert result.components == expected.components
            for param in model.parameters():
                param.zero_grad()
            for param in twin_model.parameters():
                param.zero_grad()
            result.total.backward()
            expected.total.backward()
            for tape_param, eager_param in zip(
                model.parameters(), twin_model.parameters()
            ):
                assert np.array_equal(tape_param.grad, eager_param.grad)
        assert executor.compiles == 1
        assert executor.replays == len(batches) - 1
        assert executor.fallbacks == 0

    def test_batch_shape_change_retraces(self):
        loss, _, _ = _make_problem()
        executor = loss.bind("tape")
        executor(np.arange(8))
        executor(np.arange(8) + 4)
        assert (executor.compiles, executor.replays) == (1, 1)
        executor(np.arange(12))
        assert (executor.compiles, executor.replays) == (2, 1)
        # Both tapes stay cached: each shape replays without recompiling.
        executor(np.arange(8) + 8)
        executor(np.arange(12) + 2)
        assert (executor.compiles, executor.replays) == (2, 3)

    def test_parameter_rebuild_retraces(self):
        """A rebuilt parameter list (new module topology) must invalidate."""
        rng = np.random.default_rng(5)
        model_box = [MLP(4, (8,), 1, activation="elu", rng=rng)]
        data = np.random.default_rng(1).normal(size=(32, 4))
        targets = np.random.default_rng(2).normal(size=32)

        def program(env):
            predictions = model_box[0].forward(env.tensor("x")).reshape(-1)
            bundle = LossBundle()
            bundle.add("mse", mse_loss(predictions, env.tensor("y")))
            return bundle

        def feeds(batch):
            return {"x": data[batch], "y": targets[batch]}

        loss = TraceableLoss(
            program, feeds, parameters=lambda: model_box[0].parameters()
        )
        executor = loss.bind("tape")
        executor(np.arange(8))
        executor(np.arange(8))
        assert (executor.compiles, executor.replays) == (1, 1)
        model_box[0] = MLP(4, (8,), 1, activation="elu", rng=np.random.default_rng(9))
        executor(np.arange(8))
        assert (executor.compiles, executor.replays) == (2, 1)
        grads = [p.grad for p in model_box[0].parameters()]
        executor(np.arange(8)).total.backward()
        assert all(g is not None for g in [p.grad for p in model_box[0].parameters()])
        del grads

    def test_steady_state_replay_is_allocation_free(self):
        loss, _, _ = _make_problem()
        executor = loss.bind("tape")
        batches = [np.arange(8) + i for i in range(6)]
        # Warm-up pass: dynamic group buffers may grow capacity once when a
        # batch has more treated/control units than the compile batch saw.
        for batch in batches:
            executor(batch).total.backward()
        (tape,) = executor._tapes.values()
        idents = tape.buffer_ids()
        for batch in batches:
            executor(batch).total.backward()
            assert tape.buffer_ids() == idents
        assert executor.compiles == 1


class TestGuardFallback:
    def test_predicate_flip_falls_back_to_eager_bit_identically(self):
        """A one-arm minibatch aborts the replay and re-runs eagerly.

        The model contains dropout, so the test also pins the RNG rewind: the
        replay consumes generator draws before the guard fires, and the
        fallback must see the exact pre-step stream state.
        """
        loss, model, treatments = _make_problem(dropout=0.3)
        twin_loss, twin_model, _ = _make_problem(dropout=0.3)
        executor = loss.bind("tape")
        eager = twin_loss.bind("eager")

        mixed = np.flatnonzero(treatments == 1)[:3]
        mixed = np.concatenate([mixed, np.flatnonzero(treatments == 0)[:5]])
        one_arm = np.flatnonzero(treatments == 1)[:8]
        assert len(mixed) == 8 and len(one_arm) == 8

        for batch in [mixed, one_arm, mixed]:
            result = executor(batch)
            expected = eager(batch)
            assert result.components == expected.components
            for param in model.parameters():
                param.zero_grad()
            for param in twin_model.parameters():
                param.zero_grad()
            result.total.backward()
            expected.total.backward()
            for tape_param, eager_param in zip(
                model.parameters(), twin_model.parameters()
            ):
                assert np.array_equal(tape_param.grad, eager_param.grad)
        assert executor.compiles == 1
        assert executor.fallbacks == 1
        assert executor.replays == 1


class TestTraceableLoss:
    def test_eager_bind_is_the_plain_evaluation(self):
        loss, _, _ = _make_problem()
        batch = np.arange(10)
        bound = loss.bind("eager")
        direct = loss.program(EagerEnv(loss.feeds(batch))).result()
        assert bound(batch).components == direct.components

    def test_unknown_backend_rejected(self):
        loss, _, _ = _make_problem()
        try:
            loss.bind("graph")
        except ValueError as error:
            assert "graph" in str(error)
        else:  # pragma: no cover
            raise AssertionError("bind accepted an unknown backend")
