"""Tests for the shared training engine loop and loss composition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    Callback,
    History,
    LossBundle,
    Trainer,
    TrainingHistory,
    iterate,
)
from repro.nn import SGD, Adam, StepLR, Tensor, mse_loss
from repro.nn.module import Module, Parameter


class LinearModel(Module):
    def __init__(self, n_features: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.weight = Parameter(rng.normal(scale=0.1, size=(n_features, 1)))
        self.bias = Parameter(np.zeros((1, 1)))

    def forward(self, x: Tensor) -> Tensor:
        return x @ self.weight + self.bias


@pytest.fixture
def regression_problem(rng):
    n, p = 96, 4
    x = rng.normal(size=(n, p))
    true_w = rng.normal(size=(p, 1))
    y = x @ true_w + 0.01 * rng.normal(size=(n, 1))
    return x, y


def make_batch_loss(model, x, y):
    def batch_loss(batch):
        bundle = LossBundle()
        pred = model.forward(Tensor(x[batch]))
        bundle.add("factual", mse_loss(pred, Tensor(y[batch])))
        return bundle.result()

    return batch_loss


class TestTrainer:
    def test_loss_decreases(self, rng, regression_problem):
        x, y = regression_problem
        model = LinearModel(x.shape[1], rng)
        history = TrainingHistory()
        trainer = Trainer(
            model.parameters(),
            Adam(model.parameters(), lr=0.05),
            batch_size=32,
            rng=rng,
            callbacks=[History(history)],
        )
        trainer.fit(len(x), make_batch_loss(model, x, y), epochs=20)
        assert len(history) == 20
        assert history.total[-1] < history.total[0]

    def test_validation_recorded(self, rng, regression_problem):
        x, y = regression_problem
        model = LinearModel(x.shape[1], rng)
        history = TrainingHistory()
        trainer = Trainer(
            model.parameters(),
            SGD(model.parameters(), lr=0.05),
            batch_size=32,
            rng=rng,
            callbacks=[History(history)],
        )
        trainer.fit(
            len(x), make_batch_loss(model, x, y), epochs=5, validate=lambda: 1.25
        )
        assert history.validation == [1.25] * 5

    def test_scheduler_advanced_once_per_epoch(self, rng, regression_problem):
        x, y = regression_problem
        model = LinearModel(x.shape[1], rng)
        optimizer = SGD(model.parameters(), lr=0.1)
        scheduler = StepLR(optimizer, step_size=2, gamma=0.5)
        trainer = Trainer(
            model.parameters(),
            optimizer,
            batch_size=32,
            rng=rng,
            scheduler=scheduler,
        )
        trainer.fit(len(x), make_batch_loss(model, x, y), epochs=4)
        assert optimizer.lr == pytest.approx(0.1 * 0.5 ** 2)

    def test_stop_request_breaks_loop(self, rng, regression_problem):
        x, y = regression_problem
        model = LinearModel(x.shape[1], rng)

        class StopAfterThree(Callback):
            def on_epoch_end(self, state):
                if state.epoch == 2:
                    state.stop_training = True

        history = TrainingHistory()
        trainer = Trainer(
            model.parameters(),
            SGD(model.parameters(), lr=0.05),
            batch_size=32,
            rng=rng,
            callbacks=[History(history), StopAfterThree()],
        )
        state = trainer.fit(len(x), make_batch_loss(model, x, y), epochs=50)
        assert len(history) == 3
        assert state.stop_training
        assert history.stopped_early

    def test_input_validation(self, rng, regression_problem):
        x, y = regression_problem
        model = LinearModel(x.shape[1], rng)
        optimizer = SGD(model.parameters(), lr=0.05)
        with pytest.raises(ValueError):
            Trainer(model.parameters(), optimizer, batch_size=0)
        trainer = Trainer(model.parameters(), optimizer, batch_size=32)
        with pytest.raises(ValueError):
            trainer.fit(0, make_batch_loss(model, x, y), epochs=1)
        with pytest.raises(ValueError):
            trainer.fit(len(x), make_batch_loss(model, x, y), epochs=0)


class TestLossBundle:
    def test_total_weights_terms(self):
        bundle = LossBundle()
        bundle.add("a", Tensor(2.0))
        bundle.add("b", Tensor(3.0), weight=0.5)
        assert bundle.total().item() == pytest.approx(3.5)

    def test_components_are_unweighted(self):
        bundle = LossBundle()
        bundle.add("a", Tensor(2.0))
        bundle.add("b", Tensor(3.0), weight=0.5)
        result = bundle.result()
        assert result.components == {"a": 2.0, "b": 3.0, "total": 3.5}

    def test_gradient_flows_through_weights(self):
        param = Tensor(np.array([2.0]), requires_grad=True)
        bundle = LossBundle()
        bundle.add("a", (param * param).sum())
        bundle.add("b", param.sum(), weight=3.0)
        bundle.total().backward()
        np.testing.assert_allclose(param.grad, [2.0 * 2.0 + 3.0])

    def test_duplicate_name_rejected(self):
        bundle = LossBundle()
        bundle.add("a", Tensor(1.0))
        with pytest.raises(ValueError):
            bundle.add("a", Tensor(2.0))

    def test_empty_bundle_rejected(self):
        with pytest.raises(ValueError):
            LossBundle().total()


class TestIterate:
    def test_runs_to_budget_without_tol(self):
        calls = []
        assert iterate(lambda i: calls.append(i) or 1.0, max_iterations=5) == 5
        assert calls == [0, 1, 2, 3, 4]

    def test_stops_on_tolerance(self):
        deltas = iter([1.0, 0.5, 1e-9, 1.0])
        performed = iterate(lambda i: next(deltas), max_iterations=10, tol=1e-6)
        assert performed == 3

    def test_exposed_as_trainer_converge(self):
        assert Trainer.converge is iterate

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            iterate(lambda i: 0.0, max_iterations=0)
