"""Tests for engine callbacks: ordering, early stopping, checkpointing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import load_modules, module_checkpointer
from repro.engine import (
    Callback,
    Checkpoint,
    EarlyStopping,
    History,
    LossBundle,
    Trainer,
    TrainingHistory,
)
from repro.nn import SGD, Tensor, mse_loss
from repro.nn.module import Module, Parameter


class TinyModel(Module):
    def __init__(self, value: float = 0.0) -> None:
        super().__init__()
        self.weight = Parameter(np.array([[value]]))

    def forward(self, x: Tensor) -> Tensor:
        return x @ self.weight


def run_trainer(model, callbacks, epochs=4, validate=None, rng=None):
    x = np.linspace(-1.0, 1.0, 16).reshape(-1, 1)
    y = 2.0 * x

    def batch_loss(batch):
        bundle = LossBundle()
        bundle.add("factual", mse_loss(model.forward(Tensor(x[batch])), Tensor(y[batch])))
        return bundle.result()

    trainer = Trainer(
        model.parameters(),
        SGD(model.parameters(), lr=0.1),
        batch_size=8,
        rng=rng if rng is not None else np.random.default_rng(0),
        callbacks=callbacks,
    )
    return trainer.fit(len(x), batch_loss, epochs=epochs, validate=validate)


class Recorder(Callback):
    def __init__(self, name: str, log: list) -> None:
        self.name = name
        self.log = log

    def on_train_begin(self, state):
        self.log.append((self.name, "train_begin"))

    def on_epoch_begin(self, state):
        self.log.append((self.name, "epoch_begin", state.epoch))

    def on_epoch_end(self, state):
        self.log.append((self.name, "epoch_end", state.epoch))

    def on_train_end(self, state):
        self.log.append((self.name, "train_end"))


class TestCallbackOrdering:
    def test_hooks_fire_in_list_order(self):
        log: list = []
        run_trainer(TinyModel(), [Recorder("first", log), Recorder("second", log)], epochs=2)
        assert log == [
            ("first", "train_begin"),
            ("second", "train_begin"),
            ("first", "epoch_begin", 0),
            ("second", "epoch_begin", 0),
            ("first", "epoch_end", 0),
            ("second", "epoch_end", 0),
            ("first", "epoch_begin", 1),
            ("second", "epoch_begin", 1),
            ("first", "epoch_end", 1),
            ("second", "epoch_end", 1),
            ("first", "train_end"),
            ("second", "train_end"),
        ]

    def test_history_before_early_stopping_sees_epoch(self):
        """The learners register History before EarlyStopping; when the stop
        triggers, the stopping epoch itself must already be recorded."""
        model = TinyModel()
        history = TrainingHistory()
        losses = iter([3.0, 2.0, 2.5, 2.6, 2.7])
        stopper = EarlyStopping([model], patience=2, min_delta=0.0)
        run_trainer(
            model,
            [History(history), stopper],
            epochs=10,
            validate=lambda: next(losses),
        )
        assert len(history) == 4  # stop after two non-improving epochs
        assert history.validation == [3.0, 2.0, 2.5, 2.6]
        assert history.stopped_early


class TestEarlyStopping:
    def test_restore_round_trip_uses_raw_array_copies(self):
        model = TinyModel(5.0)
        stopper = EarlyStopping([model], patience=3)
        param = model.parameters()[0]
        stopper.update(1.0)  # improvement: snapshot of 5.0 taken
        snapshot = stopper._best_arrays[0]
        assert isinstance(snapshot, np.ndarray)
        assert snapshot is not param.data  # true copy, not a reference

        param.data = np.array([[9.0]])  # training moves on and gets worse
        stopper.update(2.0)
        stopper.restore()
        assert param.data.item() == pytest.approx(5.0)
        # restoring must not alias the stored snapshot either
        param.data += 1.0
        assert stopper._best_arrays[0].item() == pytest.approx(5.0)

    def test_parameter_identity_preserved_across_restore(self):
        model = TinyModel(1.0)
        param = model.parameters()[0]
        stopper = EarlyStopping([model], patience=1)
        stopper.update(1.0)
        stopper.restore()
        assert model.parameters()[0] is param

    def test_patience_zero_disables_stopping(self):
        model = TinyModel()
        history = TrainingHistory()
        worsening = iter(float(v) for v in range(100))
        run_trainer(
            model,
            [History(history), EarlyStopping([model], patience=0)],
            epochs=6,
            validate=lambda: next(worsening),
        )
        assert len(history) == 6  # full budget, never stopped
        assert not history.stopped_early

    def test_negative_patience_rejected(self):
        with pytest.raises(ValueError):
            EarlyStopping([TinyModel()], patience=-1)

    def test_stops_after_patience_epochs(self):
        stopper = EarlyStopping([TinyModel()], patience=2, min_delta=0.0)
        stopper.update(1.0)
        assert not stopper.should_stop()
        stopper.update(1.5)
        assert not stopper.should_stop()
        stopper.update(1.4)
        assert stopper.should_stop()


class TestEarlyStoppingNaN:
    def test_nan_counts_as_no_improvement(self):
        """NaN compares False against every threshold; it must still drain
        the patience budget instead of training to the epoch limit."""
        stopper = EarlyStopping([TinyModel()], patience=2)
        stopper.update(float("nan"))
        stopper.update(float("nan"))
        assert stopper.should_stop()

    def test_nan_never_becomes_the_best_loss(self):
        stopper = EarlyStopping([TinyModel()], patience=5)
        stopper.update(float("nan"))
        assert stopper.best_loss == float("inf")
        stopper.update(2.0)  # a later finite loss still registers
        assert stopper.best_loss == 2.0

    def test_diverged_run_stops_early_and_restores_initial_state(self):
        """A run whose every validation loss is NaN must stop after
        ``patience`` epochs and restore the pre-training parameters — not
        silently keep the diverged weights."""
        model = TinyModel(5.0)
        initial = model.parameters()[0].data.copy()
        history = TrainingHistory()
        state = run_trainer(
            model,
            [History(history), EarlyStopping([model], patience=2)],
            epochs=50,
            validate=lambda: float("nan"),
        )
        assert state.stop_training
        assert len(history) == 2  # patience exhausted immediately
        np.testing.assert_array_equal(model.parameters()[0].data, initial)

    def test_run_without_validation_keeps_final_weights(self):
        """An enabled EarlyStopping attached to a run that never produces a
        validation loss must not restore the initial-parameters fallback —
        that would silently revert the whole training run."""
        model = TinyModel(5.0)
        initial = model.parameters()[0].data.copy()
        run_trainer(model, [EarlyStopping([model], patience=2)], epochs=4)
        trained = model.parameters()[0].data
        assert not np.array_equal(trained, initial)  # training happened
        # and restore() stays a no-op even when called again by hand
        stopper = EarlyStopping([model], patience=2)
        stopper.restore()
        np.testing.assert_array_equal(model.parameters()[0].data, trained)

    def test_nan_after_finite_losses_restores_best_finite_snapshot(self):
        model = TinyModel(1.0)
        stopper = EarlyStopping([model], patience=3)
        stopper.update(0.5)  # snapshot of the 1.0 weights
        model.parameters()[0].data = np.array([[123.0]])  # diverges
        stopper.update(float("nan"))
        stopper.restore()
        assert model.parameters()[0].data.item() == pytest.approx(1.0)


class TestCheckpoint:
    def test_periodic_saves_and_final_save(self, tmp_path):
        model = TinyModel(1.0)
        save_fn = module_checkpointer({"model": model}, tmp_path, stem="tiny")
        checkpoint = Checkpoint(save_fn, every=2)
        run_trainer(TinyModel(), [checkpoint], epochs=5)
        assert checkpoint.saved_epochs == [1, 3, 4]
        assert sorted(p.name for p in tmp_path.glob("*.npz")) == [
            "tiny_epoch0001.npz",
            "tiny_epoch0003.npz",
            "tiny_epoch0004.npz",
        ]

    def test_round_trip_restores_parameters(self, tmp_path):
        model = TinyModel(7.0)
        save_fn = module_checkpointer({"model": model}, tmp_path)
        path = save_fn(0)
        model.parameters()[0].data = np.array([[0.0]])
        load_modules({"model": model}, path)
        assert model.parameters()[0].data.item() == pytest.approx(7.0)

    def test_invalid_every_rejected(self):
        with pytest.raises(ValueError):
            Checkpoint(lambda epoch: None, every=0)


class TestHistoryStopFlag:
    def test_stopped_early_survives_a_later_full_run(self):
        """A shared history (fit + fine_tune) keeps the early-stop record."""
        model = TinyModel()
        history = TrainingHistory()
        worsening = iter(float(v) for v in range(100))
        run_trainer(
            model,
            [History(history), EarlyStopping([model], patience=1)],
            epochs=10,
            validate=lambda: next(worsening),
        )
        assert history.stopped_early
        run_trainer(model, [History(history)], epochs=2)  # runs full budget
        assert history.stopped_early  # not clobbered back to False
