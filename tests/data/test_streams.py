"""Tests for the sequential domain stream."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import DomainStream, SyntheticConfig, SyntheticDomainGenerator


@pytest.fixture(scope="module")
def three_domains():
    config = SyntheticConfig(
        n_confounders=4, n_instruments=2, n_irrelevant=3, n_adjustment=4, n_units=120
    )
    return SyntheticDomainGenerator(config, seed=2).generate_stream(3)


class TestDomainStream:
    def test_length_and_indexing(self, three_domains):
        stream = DomainStream(three_domains, seed=0)
        assert len(stream) == 3
        assert stream[0].train.n_features == stream.n_features
        assert [split.name for split in stream] == [d.name + "/train" for d in three_domains]

    def test_split_sizes_follow_fractions(self, three_domains):
        stream = DomainStream(three_domains, train_fraction=0.6, val_fraction=0.2, seed=0)
        split = stream[0]
        total = len(split.train) + len(split.val) + len(split.test)
        assert total == len(three_domains[0])
        assert len(split.train) == pytest.approx(0.6 * total, abs=2)
        assert len(split.val) == pytest.approx(0.2 * total, abs=2)

    def test_train_and_val_accessors(self, three_domains):
        stream = DomainStream(three_domains, seed=0)
        assert stream.train_data(1) is stream[1].train
        assert stream.val_data(2) is stream[2].val

    def test_test_sets_seen(self, three_domains):
        stream = DomainStream(three_domains, seed=0)
        assert len(stream.test_sets_seen(0)) == 1
        assert len(stream.test_sets_seen(2)) == 3
        with pytest.raises(IndexError):
            stream.test_sets_seen(3)

    def test_previous_and_new_test(self, three_domains):
        stream = DomainStream(three_domains, seed=0)
        previous, new = stream.previous_and_new_test(2)
        assert len(previous) == len(stream[0].test) + len(stream[1].test)
        assert len(new) == len(stream[2].test)
        with pytest.raises(ValueError):
            stream.previous_and_new_test(0)

    def test_joint_training_data(self, three_domains):
        stream = DomainStream(three_domains, seed=0)
        joint = stream.joint_training_data(1)
        assert len(joint) == len(stream[0].train) + len(stream[1].train)

    def test_mixed_dimensions_rejected(self, three_domains):
        other_config = SyntheticConfig(
            n_confounders=3, n_instruments=2, n_irrelevant=2, n_adjustment=3, n_units=80
        )
        other = SyntheticDomainGenerator(other_config, seed=1).generate_domain(0)
        with pytest.raises(ValueError):
            DomainStream([three_domains[0], other])

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            DomainStream([])

    def test_splits_deterministic_given_seed(self, three_domains):
        a = DomainStream(three_domains, seed=4)
        b = DomainStream(three_domains, seed=4)
        np.testing.assert_array_equal(a[0].train.covariates, b[0].train.covariates)
