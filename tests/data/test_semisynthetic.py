"""Tests for the News/BlogCatalog semi-synthetic benchmark construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    BlogCatalogBenchmark,
    NewsBenchmark,
    SemiSyntheticConfig,
    blogcatalog_config,
    load_news_domain_pair,
    news_config,
)


@pytest.fixture(scope="module")
def small_news() -> NewsBenchmark:
    return NewsBenchmark(scale=0.03, seed=11)


class TestConfigs:
    def test_news_paper_scale_dimensions(self):
        config = news_config()
        assert config.n_units == 5000
        assert config.vocab_size == 3477
        assert config.n_topics == 50
        assert config.outcome_scale == 60.0
        assert config.selection_bias == 10.0

    def test_blogcatalog_paper_scale_dimensions(self):
        config = blogcatalog_config()
        assert config.n_units == 5196
        assert config.vocab_size == 2160

    def test_scaling_shrinks_sizes(self):
        config = news_config(scale=0.1)
        assert config.n_units < 5000
        assert config.vocab_size < 3477
        assert config.n_units >= 60

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            news_config(scale=0.0)
        with pytest.raises(ValueError):
            news_config(scale=1.5)

    def test_invalid_config_values(self):
        with pytest.raises(ValueError):
            SemiSyntheticConfig(n_units=5)
        with pytest.raises(ValueError):
            SemiSyntheticConfig(vocab_size=10, n_topics=20)
        with pytest.raises(ValueError):
            SemiSyntheticConfig(outcome_scale=0.0)


class TestDomainPairs:
    @pytest.mark.parametrize("scenario", ["substantial", "moderate", "none"])
    def test_domain_pair_structure(self, small_news, scenario):
        first, second = small_news.generate_domain_pair(scenario)
        assert first.n_features == second.n_features
        assert first.has_counterfactuals and second.has_counterfactuals
        assert first.domain == 0 and second.domain == 1
        assert len(first) + len(second) <= small_news.config.n_units
        for dataset in (first, second):
            assert dataset.n_treated > 0
            assert dataset.n_control > 0

    def test_unknown_scenario_raises(self, small_news):
        with pytest.raises(ValueError):
            small_news.generate_domain_pair("extreme")

    def test_substantial_shift_has_larger_covariate_divergence_than_none(self, small_news):
        def mean_gap(pair):
            first, second = pair
            gap = first.covariates.mean(axis=0) - second.covariates.mean(axis=0)
            return float(np.linalg.norm(gap))

        substantial = mean_gap(small_news.generate_domain_pair("substantial"))
        none = mean_gap(small_news.generate_domain_pair("none"))
        assert substantial > none

    def test_no_shift_similar_outcome_distributions(self, small_news):
        first, second = small_news.generate_domain_pair("none")
        assert abs(first.outcomes.mean() - second.outcomes.mean()) < 0.25 * (
            abs(first.outcomes.mean()) + 1.0
        )

    def test_outcomes_follow_potential_outcomes_plus_noise(self, small_news):
        first, _ = small_news.generate_domain_pair("substantial")
        factual = np.where(first.treatments == 1, first.mu1, first.mu0)
        residual = first.outcomes - factual
        assert np.abs(residual).max() < 6.0  # noise is N(0, 1)
        assert abs(residual.mean()) < 0.5

    def test_treatment_effect_is_nonnegative(self, small_news):
        """mu1 - mu0 = C * z . z_c1 >= 0 because topic proportions are non-negative."""
        first, second = small_news.generate_domain_pair("moderate")
        assert np.all(first.true_ite >= -1e-9)
        assert np.all(second.true_ite >= -1e-9)

    def test_selection_bias_present(self, small_news):
        """Treated units should have systematically higher treated-centroid affinity."""
        first, _ = small_news.generate_domain_pair("none")
        treated_ite = first.true_ite[first.treatments == 1].mean()
        control_ite = first.true_ite[first.treatments == 0].mean()
        assert treated_ite > control_ite

    def test_reproducible_given_seed(self):
        pair_a = load_news_domain_pair("substantial", scale=0.03, seed=3)
        pair_b = load_news_domain_pair("substantial", scale=0.03, seed=3)
        np.testing.assert_array_equal(pair_a[0].covariates, pair_b[0].covariates)
        np.testing.assert_array_equal(pair_a[1].outcomes, pair_b[1].outcomes)

    def test_different_seeds_differ(self):
        pair_a = load_news_domain_pair("substantial", scale=0.03, seed=3)
        pair_b = load_news_domain_pair("substantial", scale=0.03, seed=4)
        assert pair_a[0].covariates.shape != pair_b[0].covariates.shape or not np.allclose(
            pair_a[0].covariates[: len(pair_b[0])], pair_b[0].covariates[: len(pair_a[0])]
        )


class TestBenchmarkClasses:
    def test_blogcatalog_small_scale(self):
        benchmark = BlogCatalogBenchmark(scale=0.03, seed=5)
        first, second = benchmark.generate_domain_pair("none")
        assert first.n_features == benchmark.config.vocab_size
        assert len(first) > 10 and len(second) > 10

    def test_population_summary_keys(self, small_news):
        summary = small_news.population_summary()
        for key in ("n_units", "treated_fraction", "true_ate", "mean_propensity"):
            assert key in summary
        assert 0.0 < summary["treated_fraction"] < 1.0
        assert 0.0 < summary["mean_propensity"] < 1.0

    def test_population_cached(self, small_news):
        assert small_news._simulate_population() is small_news._simulate_population()
