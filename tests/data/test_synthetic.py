"""Tests for the synthetic multi-domain generator (Figure 2 semantics, Eq. 10-12)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    SyntheticConfig,
    SyntheticDomainGenerator,
    build_block_correlation,
    hub_toeplitz_correlation,
)
from repro.data.synthetic import hub_correlations


class TestHubCorrelation:
    def test_formula_matches_paper_equation(self):
        """Eq. 12: R_{i,1} = rho_max - ((i-2)/(d-2))^gamma (rho_max - rho_min)."""
        correlations = hub_correlations(5, rho_max=0.8, rho_min=0.2, gamma=1.0)
        assert correlations[0] == pytest.approx(1.0)
        assert correlations[1] == pytest.approx(0.8)   # i=2 -> rho_max
        assert correlations[-1] == pytest.approx(0.2)  # i=d -> rho_min
        # linear decay in between for gamma=1
        assert correlations[2] == pytest.approx(0.8 - (1 / 3) * 0.6)

    def test_gamma_controls_decay_shape(self):
        fast = hub_correlations(10, 0.9, 0.1, gamma=0.5)
        slow = hub_correlations(10, 0.9, 0.1, gamma=2.0)
        # with gamma < 1 the correlation drops quickly; with gamma > 1 slowly
        assert fast[4] < slow[4]

    def test_small_sizes(self):
        assert hub_correlations(1, 0.8, 0.2, 1.0).tolist() == [1.0]
        np.testing.assert_allclose(hub_correlations(2, 0.8, 0.2, 1.0), [1.0, 0.8])

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            hub_correlations(0, 0.8, 0.2, 1.0)
        with pytest.raises(ValueError):
            hub_correlations(5, 0.2, 0.8, 1.0)

    def test_matrix_is_positive_definite_correlation(self):
        matrix = hub_toeplitz_correlation(12, 0.85, 0.15, 1.3)
        np.testing.assert_allclose(np.diag(matrix), np.ones(12), atol=1e-9)
        np.testing.assert_allclose(matrix, matrix.T, atol=1e-12)
        assert np.linalg.eigvalsh(matrix).min() > 0

    def test_block_correlation_structure(self, rng):
        matrix = build_block_correlation([4, 3, 5], rng)
        assert matrix.shape == (12, 12)
        assert np.linalg.eigvalsh(matrix).min() > 0
        # off-diagonal blocks are (near) zero: different variable types uncorrelated
        off_block = matrix[:4, 4:7]
        assert np.abs(off_block).max() < 0.15

    def test_block_correlation_invalid_sizes(self, rng):
        with pytest.raises(ValueError):
            build_block_correlation([4, 0], rng)


class TestConfig:
    def test_default_matches_paper(self):
        config = SyntheticConfig()
        assert config.n_confounders == 35
        assert config.n_instruments == 10
        assert config.n_irrelevant == 20
        assert config.n_adjustment == 35
        assert config.n_covariates == 100
        assert config.n_units == 10000

    def test_slices_partition_covariates(self):
        config = SyntheticConfig(n_confounders=5, n_instruments=3, n_irrelevant=4, n_adjustment=6)
        indices = np.arange(config.n_covariates)
        pieces = [
            indices[config.confounder_slice],
            indices[config.instrument_slice],
            indices[config.irrelevant_slice],
            indices[config.adjustment_slice],
        ]
        assert np.concatenate(pieces).tolist() == list(range(18))

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            SyntheticConfig(n_confounders=0)
        with pytest.raises(ValueError):
            SyntheticConfig(n_units=5)
        with pytest.raises(ValueError):
            SyntheticConfig(noise_std=-1.0)


class TestDomainGeneration:
    @pytest.fixture(scope="class")
    def generator(self):
        config = SyntheticConfig(
            n_confounders=6, n_instruments=3, n_irrelevant=4, n_adjustment=6, n_units=300
        )
        return SyntheticDomainGenerator(config, seed=5)

    def test_domain_shapes_and_validity(self, generator):
        domain = generator.generate_domain(0)
        assert len(domain) == 300
        assert domain.n_features == 19
        assert domain.has_counterfactuals
        assert domain.n_treated > 0 and domain.n_control > 0

    def test_outcome_consistency(self, generator):
        """The factual outcome equals the matching potential outcome plus noise."""
        domain = generator.generate_domain(0)
        factual = np.where(domain.treatments == 1, domain.mu1, domain.mu0)
        residuals = domain.outcomes - factual
        assert abs(residuals.mean()) < 0.2
        assert 0.7 < residuals.std() < 1.3

    def test_treatment_effect_nonnegative_and_bounded(self, generator):
        """tau = scale * sin(.)^2 lies in [0, scale]."""
        domain = generator.generate_domain(1)
        ite = domain.true_ite
        assert np.all(ite >= -1e-9)
        assert np.all(ite <= generator.config.outcome_scale + 1e-9)

    def test_instruments_do_not_affect_potential_outcomes(self, generator):
        """Figure 2: instrumental variables influence only the treatment."""
        rng = np.random.default_rng(0)
        covariates = rng.normal(size=(50, generator.config.n_covariates))
        modified = covariates.copy()
        modified[:, generator.config.instrument_slice] += 5.0
        np.testing.assert_allclose(
            generator.treatment_effect(covariates), generator.treatment_effect(modified)
        )
        np.testing.assert_allclose(
            generator.baseline_outcome(covariates), generator.baseline_outcome(modified)
        )

    def test_instruments_do_affect_propensity(self, generator):
        rng = np.random.default_rng(1)
        covariates = rng.normal(size=(200, generator.config.n_covariates))
        modified = covariates.copy()
        modified[:, generator.config.instrument_slice] += 2.0
        assert not np.allclose(generator.propensity(covariates), generator.propensity(modified))

    def test_irrelevant_variables_affect_nothing(self, generator):
        rng = np.random.default_rng(2)
        covariates = rng.normal(size=(50, generator.config.n_covariates))
        modified = covariates.copy()
        modified[:, generator.config.irrelevant_slice] += 10.0
        np.testing.assert_allclose(
            generator.treatment_effect(covariates), generator.treatment_effect(modified)
        )
        np.testing.assert_allclose(
            generator.propensity(covariates), generator.propensity(modified)
        )

    def test_confounders_affect_both_outcome_and_treatment(self, generator):
        rng = np.random.default_rng(3)
        covariates = rng.normal(size=(100, generator.config.n_covariates))
        modified = covariates.copy()
        modified[:, generator.config.confounder_slice] += 2.0
        assert not np.allclose(
            generator.treatment_effect(covariates), generator.treatment_effect(modified)
        )
        assert not np.allclose(generator.propensity(covariates), generator.propensity(modified))

    def test_propensity_in_unit_interval(self, generator):
        domain = generator.generate_domain(2)
        propensity = generator.propensity(domain.covariates)
        assert np.all((propensity >= 0.0) & (propensity <= 1.0))

    def test_domains_have_shifted_covariate_distributions(self, generator):
        first = generator.generate_domain(0)
        third = generator.generate_domain(2)
        gap = np.linalg.norm(first.covariates.mean(axis=0) - third.covariates.mean(axis=0))
        assert gap > 0.5

    def test_repetitions_are_independent_draws_from_same_domain(self, generator):
        rep0 = generator.generate_domain(1, repetition=0)
        rep1 = generator.generate_domain(1, repetition=1)
        assert not np.allclose(rep0.covariates, rep1.covariates)
        # but the domain-level mean is similar (same distribution)
        gap = np.linalg.norm(rep0.covariates.mean(axis=0) - rep1.covariates.mean(axis=0))
        assert gap < 0.6

    def test_generate_stream(self, generator):
        stream = generator.generate_stream(3, n_units=100)
        assert len(stream) == 3
        assert all(len(domain) == 100 for domain in stream)
        assert [domain.domain for domain in stream] == [0, 1, 2]

    def test_reproducibility(self):
        config = SyntheticConfig(
            n_confounders=4, n_instruments=2, n_irrelevant=2, n_adjustment=4, n_units=80
        )
        a = SyntheticDomainGenerator(config, seed=9).generate_domain(1)
        b = SyntheticDomainGenerator(config, seed=9).generate_domain(1)
        np.testing.assert_array_equal(a.covariates, b.covariates)
        np.testing.assert_array_equal(a.outcomes, b.outcomes)

    def test_invalid_arguments(self, generator):
        with pytest.raises(ValueError):
            generator.generate_domain(-1)
        with pytest.raises(ValueError):
            generator.generate_domain(0, n_units=5)
        with pytest.raises(ValueError):
            generator.generate_stream(0)

class TestConfoundingStrength:
    """The confounding_strength knob: RCT at 0, the paper at 1, biased above."""

    CONFIG = dict(
        n_confounders=6, n_instruments=3, n_irrelevant=4, n_adjustment=6, n_units=400
    )

    def _domain(self, strength, seed=13):
        config = SyntheticConfig(confounding_strength=strength, **self.CONFIG)
        return SyntheticDomainGenerator(config, seed=seed).generate_domain(0)

    def test_default_strength_is_bitwise_identical_to_historical_draws(self):
        baseline = SyntheticDomainGenerator(
            SyntheticConfig(**self.CONFIG), seed=13
        ).generate_domain(0)
        explicit = self._domain(1.0)
        np.testing.assert_array_equal(baseline.covariates, explicit.covariates)
        np.testing.assert_array_equal(baseline.treatments, explicit.treatments)
        np.testing.assert_array_equal(baseline.outcomes, explicit.outcomes)

    def test_zero_strength_is_a_randomised_trial(self):
        config = SyntheticConfig(confounding_strength=0.0, **self.CONFIG)
        generator = SyntheticDomainGenerator(config, seed=13)
        domain = generator.generate_domain(0)
        np.testing.assert_allclose(generator.propensity(domain.covariates), 0.5)

    def test_negative_strength_rejected(self):
        with pytest.raises(ValueError):
            SyntheticConfig(confounding_strength=-0.5)

    def test_strong_confounding_selects_sicker_units(self):
        """Above 1, treatment assignment tilts toward high baseline outcomes."""
        config = SyntheticConfig(confounding_strength=2.5, **self.CONFIG)
        generator = SyntheticDomainGenerator(config, seed=13)
        domain = generator.generate_domain(0)
        treated_mu0 = domain.mu0[domain.treatments == 1].mean()
        control_mu0 = domain.mu0[domain.treatments == 0].mean()
        assert treated_mu0 > control_mu0 + 0.5

    def test_naive_bias_grows_with_strength(self):
        from repro.core import naive_ate

        biases = []
        for strength in (1.0, 2.5):
            domain = self._domain(strength)
            biases.append(abs(naive_ate(domain) - domain.true_ate))
        assert biases[1] > biases[0] + 0.3

    def test_covariate_draws_shared_across_strengths(self):
        """The knob reshapes selection only — X and true effects are unchanged."""
        weak = self._domain(1.0)
        strong = self._domain(2.5)
        np.testing.assert_array_equal(weak.covariates, strong.covariates)
        np.testing.assert_array_equal(weak.mu0, strong.mu0)
        np.testing.assert_array_equal(weak.mu1, strong.mu1)


class TestSelectionBias:
    @given(st.integers(0, 4))
    @settings(max_examples=5, deadline=None)
    def test_selection_bias_property(self, domain_index):
        """Across domains, units with higher propensity are treated more often."""
        config = SyntheticConfig(
            n_confounders=5, n_instruments=3, n_irrelevant=3, n_adjustment=5, n_units=400
        )
        generator = SyntheticDomainGenerator(config, seed=21)
        domain = generator.generate_domain(domain_index)
        propensity = generator.propensity(domain.covariates)
        treated_propensity = propensity[domain.treatments == 1].mean()
        control_propensity = propensity[domain.treatments == 0].mean()
        assert treated_propensity > control_propensity
