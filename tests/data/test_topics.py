"""Tests for the topic-model substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import TopicCorpusGenerator, TopicModel


class TestCorpusGenerator:
    def test_shapes_and_counts(self, rng):
        generator = TopicCorpusGenerator(n_topics=8, vocab_size=60, doc_length=50)
        corpus = generator.generate(40, rng)
        assert corpus.counts.shape == (40, 60)
        assert corpus.true_topic_mixtures.shape == (40, 8)
        assert corpus.topic_word.shape == (8, 60)
        assert corpus.dominant_topics.shape == (40,)
        assert corpus.n_documents == 40
        assert corpus.vocab_size == 60
        assert corpus.n_topics == 8

    def test_counts_are_nonnegative_integers_with_reasonable_length(self, rng):
        generator = TopicCorpusGenerator(n_topics=5, vocab_size=30, doc_length=80)
        corpus = generator.generate(20, rng)
        assert np.all(corpus.counts >= 0)
        np.testing.assert_allclose(corpus.counts, np.round(corpus.counts))
        lengths = corpus.counts.sum(axis=1)
        assert np.all(lengths >= 10)
        assert 40 < lengths.mean() < 120

    def test_mixtures_are_distributions(self, rng):
        corpus = TopicCorpusGenerator(n_topics=6, vocab_size=40).generate(15, rng)
        np.testing.assert_allclose(corpus.true_topic_mixtures.sum(axis=1), np.ones(15))
        np.testing.assert_allclose(corpus.topic_word.sum(axis=1), np.ones(6))

    def test_dominant_topic_consistent_with_mixture(self, rng):
        corpus = TopicCorpusGenerator(n_topics=6, vocab_size=40).generate(25, rng)
        np.testing.assert_array_equal(
            corpus.dominant_topics, np.argmax(corpus.true_topic_mixtures, axis=1)
        )

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            TopicCorpusGenerator(n_topics=1, vocab_size=30)
        with pytest.raises(ValueError):
            TopicCorpusGenerator(n_topics=10, vocab_size=5)
        with pytest.raises(ValueError):
            TopicCorpusGenerator(n_topics=5, vocab_size=30, doc_length=0)
        with pytest.raises(ValueError):
            TopicCorpusGenerator(n_topics=5, vocab_size=30).generate(0, np.random.default_rng(0))


class TestTopicModel:
    def test_fit_transform_returns_distributions(self, rng):
        corpus = TopicCorpusGenerator(n_topics=5, vocab_size=50, doc_length=100).generate(60, rng)
        model = TopicModel(n_topics=5, n_iterations=30)
        theta = model.fit_transform(corpus.counts, rng=rng)
        assert theta.shape == (60, 5)
        np.testing.assert_allclose(theta.sum(axis=1), np.ones(60), atol=1e-8)
        assert np.all(theta >= 0)

    def test_transform_new_documents(self, rng):
        generator = TopicCorpusGenerator(n_topics=4, vocab_size=40, doc_length=80)
        corpus = generator.generate(50, rng)
        model = TopicModel(n_topics=4, n_iterations=25).fit(corpus.counts, rng=rng)
        new_corpus = generator.generate(10, rng)
        theta = model.transform(new_corpus.counts, rng=rng)
        assert theta.shape == (10, 4)
        np.testing.assert_allclose(theta.sum(axis=1), np.ones(10), atol=1e-8)

    def test_reconstruction_improves_over_uniform(self, rng):
        """The fitted model should reconstruct word frequencies better than a
        uniform topic model (a weak but meaningful recovery check)."""
        corpus = TopicCorpusGenerator(n_topics=5, vocab_size=60, doc_length=150).generate(80, rng)
        counts = corpus.counts
        frequencies = counts / counts.sum(axis=1, keepdims=True)

        model = TopicModel(n_topics=5, n_iterations=50)
        theta = model.fit_transform(counts, rng=rng)
        reconstruction = theta @ model.topic_word_
        fitted_error = np.mean((reconstruction - frequencies) ** 2)
        uniform_error = np.mean((frequencies.mean(axis=0)[None, :] - frequencies) ** 2)
        assert fitted_error < uniform_error

    def test_documents_dominated_by_distinct_topics_get_distinct_mixtures(self, rng):
        """Documents generated from disjoint topics should receive clearly
        different estimated topic distributions."""
        generator = TopicCorpusGenerator(
            n_topics=4, vocab_size=80, doc_length=200, topic_concentration=0.02
        )
        corpus = generator.generate(120, rng)
        model = TopicModel(n_topics=4, n_iterations=50)
        theta = model.fit_transform(corpus.counts, rng=rng)
        group_a = corpus.dominant_topics == corpus.dominant_topics[0]
        if group_a.sum() < 5 or (~group_a).sum() < 5:
            pytest.skip("degenerate topic draw")
        mean_a = theta[group_a].mean(axis=0)
        mean_b = theta[~group_a].mean(axis=0)
        assert np.linalg.norm(mean_a - mean_b) > 0.1

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TopicModel(n_topics=3).transform(np.ones((2, 10)))

    def test_vocabulary_mismatch_raises(self, rng):
        corpus = TopicCorpusGenerator(n_topics=3, vocab_size=30).generate(10, rng)
        model = TopicModel(n_topics=3, n_iterations=10).fit(corpus.counts, rng=rng)
        with pytest.raises(ValueError):
            model.transform(np.ones((2, 17)))

    def test_negative_counts_raise(self):
        with pytest.raises(ValueError):
            TopicModel(n_topics=3).fit(-np.ones((4, 10)))

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            TopicModel(n_topics=1)
        with pytest.raises(ValueError):
            TopicModel(n_topics=3, n_iterations=0)
