"""Tests for the CausalDataset container and split helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import CausalDataset, minibatches, train_val_test_split


def make_dataset(n: int = 50, p: int = 4, seed: int = 0, with_cf: bool = True) -> CausalDataset:
    rng = np.random.default_rng(seed)
    covariates = rng.normal(size=(n, p))
    treatments = (rng.random(n) < 0.5).astype(int)
    mu0 = covariates[:, 0]
    mu1 = mu0 + 1.0
    outcomes = np.where(treatments == 1, mu1, mu0) + rng.normal(0, 0.1, n)
    return CausalDataset(
        covariates,
        treatments,
        outcomes,
        mu0=mu0 if with_cf else None,
        mu1=mu1 if with_cf else None,
        name="toy",
    )


class TestConstruction:
    def test_basic_properties(self):
        dataset = make_dataset(60, 5)
        assert len(dataset) == 60
        assert dataset.n_features == 5
        assert dataset.n_treated + dataset.n_control == 60
        assert dataset.has_counterfactuals

    def test_true_effects(self):
        dataset = make_dataset()
        np.testing.assert_allclose(dataset.true_ite, np.ones(len(dataset)))
        assert dataset.true_ate == pytest.approx(1.0)

    def test_missing_counterfactuals(self):
        dataset = make_dataset(with_cf=False)
        assert not dataset.has_counterfactuals
        with pytest.raises(ValueError):
            _ = dataset.true_ite

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            CausalDataset(np.zeros((5, 2)), np.zeros(4, dtype=int), np.zeros(5))
        with pytest.raises(ValueError):
            CausalDataset(np.zeros(5), np.zeros(5, dtype=int), np.zeros(5))
        with pytest.raises(ValueError):
            CausalDataset(np.zeros((5, 2)), np.array([0, 1, 2, 0, 1]), np.zeros(5))
        with pytest.raises(ValueError):
            CausalDataset(np.zeros((5, 2)), np.zeros(5, dtype=int), np.zeros(5), mu0=np.zeros(3), mu1=np.zeros(3))


class TestSubsetMerge:
    def test_subset_is_a_copy(self):
        dataset = make_dataset()
        subset = dataset.subset(np.arange(10))
        subset.covariates[:] = 0.0
        assert not np.allclose(dataset.covariates[:10], 0.0)

    def test_subset_preserves_counterfactuals(self):
        subset = make_dataset().subset(np.array([1, 3, 5]))
        assert subset.has_counterfactuals
        assert len(subset) == 3

    def test_merge_lengths_and_name(self):
        merged = make_dataset(20, seed=1).merge(make_dataset(30, seed=2), name="union")
        assert len(merged) == 50
        assert merged.name == "union"

    def test_merge_dimension_mismatch(self):
        with pytest.raises(ValueError):
            make_dataset(10, p=3).merge(make_dataset(10, p=5))

    def test_merge_drops_counterfactuals_if_either_missing(self):
        merged = make_dataset(10).merge(make_dataset(10, with_cf=False))
        assert not merged.has_counterfactuals


class TestSplits:
    def test_fractions_respected(self):
        dataset = make_dataset(100)
        train, val, test = train_val_test_split(dataset, 0.6, 0.2, rng=np.random.default_rng(0))
        assert len(train) == 60
        assert len(val) == 20
        assert len(test) == 20

    def test_splits_are_disjoint_and_cover(self):
        dataset = make_dataset(80)
        dataset.covariates[:, 0] = np.arange(80)  # unique marker per unit
        train, val, test = train_val_test_split(dataset, rng=np.random.default_rng(1))
        markers = np.concatenate(
            [train.covariates[:, 0], val.covariates[:, 0], test.covariates[:, 0]]
        )
        assert sorted(markers.tolist()) == list(range(80))

    def test_invalid_fractions(self):
        dataset = make_dataset(30)
        with pytest.raises(ValueError):
            train_val_test_split(dataset, train_fraction=0.0)
        with pytest.raises(ValueError):
            train_val_test_split(dataset, train_fraction=0.8, val_fraction=0.3)

    def test_too_small_dataset(self):
        with pytest.raises(ValueError):
            train_val_test_split(make_dataset(2))

    def test_empty_split_raises_with_offending_sizes(self):
        """Fraction rounding that would produce an empty val or test set must
        fail loudly here, not as NaN metrics downstream."""
        with pytest.raises(ValueError, match=r"train=6, val=0, test=4"):
            train_val_test_split(
                make_dataset(10), train_fraction=0.6, val_fraction=0.01
            )
        with pytest.raises(ValueError, match=r"test=0"):
            train_val_test_split(
                make_dataset(10), train_fraction=0.55, val_fraction=0.44
            )

    def test_smallest_valid_split(self):
        """n=4 at 0.5/0.25 is the smallest clean 2/1/1 split — must succeed."""
        train, val, test = train_val_test_split(
            make_dataset(4), train_fraction=0.5, val_fraction=0.25,
            rng=np.random.default_rng(0),
        )
        assert (len(train), len(val), len(test)) == (2, 1, 1)

    def test_deterministic_given_rng_seed(self):
        dataset = make_dataset(50)
        a = train_val_test_split(dataset, rng=np.random.default_rng(5))[0]
        b = train_val_test_split(dataset, rng=np.random.default_rng(5))[0]
        np.testing.assert_array_equal(a.covariates, b.covariates)


class TestMinibatches:
    def test_covers_all_indices(self):
        batches = list(minibatches(25, 10, rng=np.random.default_rng(0)))
        combined = np.concatenate(batches)
        assert sorted(combined.tolist()) == list(range(25))

    def test_batch_sizes(self):
        batches = list(minibatches(25, 10, shuffle=False))
        assert [len(b) for b in batches] == [10, 10, 5]

    def test_no_shuffle_is_ordered(self):
        batches = list(minibatches(6, 2, shuffle=False))
        np.testing.assert_array_equal(np.concatenate(batches), np.arange(6))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            list(minibatches(0, 5))
        with pytest.raises(ValueError):
            list(minibatches(10, 0))

    @given(st.integers(1, 200), st.integers(1, 50))
    @settings(max_examples=30, deadline=None)
    def test_property_every_index_appears_once(self, n, batch_size):
        combined = np.concatenate(list(minibatches(n, batch_size, rng=np.random.default_rng(0))))
        assert sorted(combined.tolist()) == list(range(n))


class TestConcat:
    def test_concat_merges_in_order(self, tiny_domains):
        first, second = tiny_domains
        merged = CausalDataset.concat([first, second])
        assert len(merged) == len(first) + len(second)
        np.testing.assert_array_equal(merged.covariates[: len(first)], first.covariates)

    def test_concat_single_with_name_does_not_mutate_source(self, tiny_dataset):
        original_name = tiny_dataset.name
        renamed = CausalDataset.concat([tiny_dataset], name="renamed")
        assert renamed.name == "renamed"
        assert tiny_dataset.name == original_name
        assert renamed is not tiny_dataset

    def test_concat_empty_rejected(self):
        with pytest.raises(ValueError):
            CausalDataset.concat([])
