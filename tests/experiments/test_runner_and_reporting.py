"""Tests for the experiment runner, reporting helpers and profiles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SyntheticDomainGenerator
from repro.experiments import (
    PAPER,
    QUICK,
    SMOKE,
    ExperimentProfile,
    cerl_variant,
    format_series,
    format_table,
    run_stream,
    run_two_domain_comparison,
    summarize_two_domain_results,
)


@pytest.fixture(scope="module")
def smoke_domains():
    generator = SyntheticDomainGenerator(SMOKE.synthetic_config(), seed=0)
    return generator.generate_domain(0), generator.generate_domain(1)


class TestProfiles:
    def test_paper_profile_matches_paper_parameters(self):
        assert PAPER.synthetic_units == 10000
        assert PAPER.memory_budget_table1 == 500
        assert PAPER.memory_budget_table2 == 10000
        assert PAPER.repetitions == 10
        assert PAPER.corpus_scale == 1.0
        assert PAPER.synthetic_blocks == (35, 10, 20, 35)

    def test_model_config_round_trip(self):
        config = QUICK.model_config(seed=7, alpha=0.5)
        assert config.seed == 7
        assert config.alpha == 0.5
        assert config.epochs == QUICK.epochs

    def test_continual_config_budget(self):
        config = QUICK.continual_config(memory_budget=123, delta=2.0)
        assert config.memory_budget == 123
        assert config.delta == 2.0

    def test_synthetic_config_blocks(self):
        config = SMOKE.synthetic_config()
        assert config.n_covariates == sum(SMOKE.synthetic_blocks)
        assert config.n_units == SMOKE.synthetic_units

    def test_synthetic_config_overrides(self):
        config = SMOKE.synthetic_config(n_units=64)
        assert config.n_units == 64

    def test_custom_profile(self):
        profile = ExperimentProfile(
            name="custom",
            corpus_scale=0.1,
            synthetic_units=100,
            epochs=2,
            memory_budget_table1=10,
            memory_budget_table2=20,
            repetitions=1,
        )
        assert profile.model_config().epochs == 2


class TestRunner:
    def test_two_domain_comparison_rows(self, smoke_domains):
        results = run_two_domain_comparison(
            smoke_domains[0],
            smoke_domains[1],
            strategies=("CFR-A", "CERL"),
            model_config=SMOKE.model_config(seed=0),
            continual_config=SMOKE.continual_config(memory_budget=40),
            seed=0,
        )
        assert [r.strategy for r in results] == ["CFR-A", "CERL"]
        for result in results:
            row = result.row()
            assert np.isfinite(row["prev_sqrt_pehe"])
            assert np.isfinite(row["new_ate_error"])
        assert not results[0].needs_previous_raw_data

    def test_cfr_c_flagged_as_needing_raw_data(self, smoke_domains):
        results = run_two_domain_comparison(
            smoke_domains[0],
            smoke_domains[1],
            strategies=("CFR-C",),
            model_config=SMOKE.model_config(seed=0),
            continual_config=SMOKE.continual_config(memory_budget=40),
        )
        assert results[0].needs_previous_raw_data
        assert results[0].stores_all_raw_data

    def test_run_stream_per_stage_structure(self, smoke_domains):
        result = run_stream(
            list(smoke_domains),
            strategy="CERL",
            model_config=SMOKE.model_config(seed=0),
            continual_config=SMOKE.continual_config(memory_budget=40),
        )
        assert len(result.per_stage) == 2
        assert len(result.per_domain[0]) == 1
        assert len(result.per_domain[1]) == 2
        assert "sqrt_pehe" in result.per_stage[0]

    def test_cerl_variant_flags(self):
        model_config = SMOKE.model_config(seed=0)
        continual_config = SMOKE.continual_config(memory_budget=40)
        no_frt = cerl_variant("CERL (w/o FRT)", 10, model_config, continual_config)
        assert not no_frt.continual_config.use_feature_transformation
        no_herding = cerl_variant("CERL (w/o herding)", 10, model_config, continual_config)
        assert no_herding.continual_config.memory_strategy == "random"
        no_cosine = cerl_variant("CERL (w/o cosine norm)", 10, model_config, continual_config)
        assert not no_cosine.model_config.use_cosine_norm
        plain = cerl_variant("CERL", 10, model_config, continual_config)
        assert plain.continual_config.use_feature_transformation


class TestReporting:
    def test_format_table_alignment_and_values(self):
        rows = [
            {"strategy": "CERL", "sqrt_pehe": 1.23456, "ok": True},
            {"strategy": "CFR-A", "sqrt_pehe": 2.0, "ok": False},
        ]
        text = format_table(rows, title="demo")
        assert "demo" in text
        assert "1.235" in text
        assert "yes" in text and "no" in text
        assert text.count("\n") == 4  # title + header + rule + 2 rows

    def test_format_table_empty_raises(self):
        with pytest.raises(ValueError):
            format_table([])

    def test_format_series(self):
        text = format_series(
            {"CERL": [1.0, 2.0], "ideal": [0.5, 0.6]},
            x_label="domain",
            x_values=[1, 2],
            title="curve",
        )
        assert "curve" in text
        assert "domain" in text
        assert "0.600" in text

    def test_summarize_two_domain_results(self, smoke_domains):
        results = run_two_domain_comparison(
            smoke_domains[0],
            smoke_domains[1],
            strategies=("CFR-A",),
            model_config=SMOKE.model_config(seed=0),
            continual_config=SMOKE.continual_config(memory_budget=40),
        )
        text = summarize_two_domain_results(results, title="Table")
        assert "CFR-A" in text
        assert "prev_sqrt_pehe" in text
