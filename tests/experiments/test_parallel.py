"""Deterministic parallel execution: the process-pool path must reproduce
the serial tables bit for bit, and the executor primitives must be stable."""

from __future__ import annotations

import pytest

from repro.data import SyntheticDomainGenerator
from repro.experiments import (
    SMOKE,
    derive_seed,
    parallel_map,
    run_stream_suite,
    run_table1,
    run_table2,
    seeded_tasks,
)


def _square(task):
    return task * task


def _raise_on_three(task):
    if task == 3:
        raise ValueError("task 3 failed")
    return task


class TestParallelMap:
    def test_serial_and_parallel_agree_and_preserve_order(self):
        tasks = list(range(10))
        assert parallel_map(_square, tasks, workers=1) == [t * t for t in tasks]
        assert parallel_map(_square, tasks, workers=4) == [t * t for t in tasks]

    def test_empty_and_single_task(self):
        assert parallel_map(_square, [], workers=4) == []
        assert parallel_map(_square, [3], workers=4) == [9]

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="task 3"):
            parallel_map(_raise_on_three, [1, 2, 3], workers=2)
        with pytest.raises(ValueError, match="task 3"):
            parallel_map(_raise_on_three, [1, 2, 3], workers=1)


class TestSeedDerivation:
    def test_stable_across_calls(self):
        assert derive_seed(0, "news", "substantial") == derive_seed(0, "news", "substantial")

    def test_distinct_per_component_and_base(self):
        seeds = {
            derive_seed(0, "news", "substantial"),
            derive_seed(0, "news", "moderate"),
            derive_seed(0, "blogcatalog", "substantial"),
            derive_seed(1, "news", "substantial"),
        }
        assert len(seeds) == 4

    def test_fits_in_32_bits(self):
        seed = derive_seed(12345, "cell", 7)
        assert 0 <= seed < 2**32

    def test_seeded_tasks_pairs_keys_with_stable_seeds(self):
        cells = ["a", "b", "c"]
        tasks = seeded_tasks(5, cells)
        assert [key for key, _ in tasks] == cells
        # Adding a cell never reshuffles existing seeds.
        assert seeded_tasks(5, cells + ["d"])[:3] == tasks


@pytest.mark.slow
class TestSerialParallelDeterminism:
    def test_run_table1_identical_with_workers(self):
        kwargs = dict(
            datasets=("news",),
            scenarios=("substantial", "none"),
            strategies=("CFR-A", "CERL"),
            seed=0,
        )
        serial = run_table1(SMOKE, workers=1, **kwargs)
        parallel = run_table1(SMOKE, workers=4, **kwargs)
        assert serial.rows() == parallel.rows()

    def test_run_table2_identical_with_workers(self):
        kwargs = dict(strategies=("CFR-A",), ablations=(), seed=1, repetitions=2)
        serial = run_table2(SMOKE, workers=1, **kwargs)
        parallel = run_table2(SMOKE, workers=4, **kwargs)
        assert serial.results == parallel.results

    def test_run_stream_suite_identical_with_workers(self):
        generator = SyntheticDomainGenerator(SMOKE.synthetic_config(), seed=0)
        datasets = generator.generate_stream(3)
        model_config = SMOKE.model_config(seed=0)
        continual_config = SMOKE.continual_config(memory_budget=60)
        serial = run_stream_suite(
            datasets, ["CFR-B", "CERL"], model_config, continual_config, seed=0, workers=1
        )
        parallel = run_stream_suite(
            datasets, ["CFR-B", "CERL"], model_config, continual_config, seed=0, workers=4
        )
        for serial_result, parallel_result in zip(serial, parallel):
            assert serial_result.strategy == parallel_result.strategy
            assert serial_result.per_stage == parallel_result.per_stage
            assert serial_result.per_domain == parallel_result.per_domain
