"""Deterministic parallel execution: the process-pool path must reproduce
the serial tables bit for bit, and the executor primitives must be stable."""

from __future__ import annotations

import pytest

from repro.data import SyntheticDomainGenerator
from repro.experiments import (
    SMOKE,
    derive_seed,
    effective_workers,
    parallel_map,
    run_stream_suite,
    run_table1,
    run_table2,
    seeded_tasks,
)


def _square(task):
    return task * task


def _raise_on_three(task):
    if task == 3:
        raise ValueError("task 3 failed")
    return task


class TestParallelMap:
    def test_serial_and_parallel_agree_and_preserve_order(self):
        tasks = list(range(10))
        assert parallel_map(_square, tasks, workers=1) == [t * t for t in tasks]
        assert parallel_map(_square, tasks, workers=4) == [t * t for t in tasks]

    def test_empty_and_single_task(self):
        assert parallel_map(_square, [], workers=4) == []
        assert parallel_map(_square, [3], workers=4) == [9]

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="task 3"):
            parallel_map(_raise_on_three, [1, 2, 3], workers=2)
        with pytest.raises(ValueError, match="task 3"):
            parallel_map(_raise_on_three, [1, 2, 3], workers=1)

    def test_force_parallel_matches_serial(self):
        # force_parallel really spins up the pool (bypassing the core-count
        # clamp) and must still reproduce the serial results in order.
        tasks = list(range(8))
        assert parallel_map(_square, tasks, workers=2, force_parallel=True) == [
            t * t for t in tasks
        ]


class TestEffectiveWorkers:
    def test_clamps_to_task_count(self):
        assert effective_workers(8, 3) <= 3
        assert effective_workers(8, 0) == 0

    def test_clamps_to_cpu_count(self, monkeypatch):
        monkeypatch.setattr("repro.experiments.parallel.os.cpu_count", lambda: 1)
        assert effective_workers(4, 10) == 1
        monkeypatch.setattr("repro.experiments.parallel.os.cpu_count", lambda: 2)
        assert effective_workers(4, 10) == 2

    def test_cpu_count_none_means_one(self, monkeypatch):
        monkeypatch.setattr("repro.experiments.parallel.os.cpu_count", lambda: None)
        assert effective_workers(4, 10) == 1

    def test_force_parallel_bypasses_cpu_clamp_only(self, monkeypatch):
        monkeypatch.setattr("repro.experiments.parallel.os.cpu_count", lambda: 1)
        assert effective_workers(4, 10, force_parallel=True) == 4
        # ...but never the task-count clamp: extra workers would sit idle.
        assert effective_workers(4, 2, force_parallel=True) == 2

    def test_oversubscribed_request_falls_back_to_serial_loop(self, monkeypatch):
        # On a 1-core machine a 2-worker request must not pay pool start-up:
        # the clamp lands on 1 worker and parallel_map takes the serial path
        # (observable because a non-picklable lambda would explode in a pool).
        monkeypatch.setattr("repro.experiments.parallel.os.cpu_count", lambda: 1)
        tasks = list(range(4))
        assert parallel_map(lambda t: t + 1, tasks, workers=2) == [1, 2, 3, 4]


class TestSeedDerivation:
    def test_stable_across_calls(self):
        assert derive_seed(0, "news", "substantial") == derive_seed(0, "news", "substantial")

    def test_distinct_per_component_and_base(self):
        seeds = {
            derive_seed(0, "news", "substantial"),
            derive_seed(0, "news", "moderate"),
            derive_seed(0, "blogcatalog", "substantial"),
            derive_seed(1, "news", "substantial"),
        }
        assert len(seeds) == 4

    def test_fits_in_32_bits(self):
        seed = derive_seed(12345, "cell", 7)
        assert 0 <= seed < 2**32

    def test_seeded_tasks_pairs_keys_with_stable_seeds(self):
        cells = ["a", "b", "c"]
        tasks = seeded_tasks(5, cells)
        assert [key for key, _ in tasks] == cells
        # Adding a cell never reshuffles existing seeds.
        assert seeded_tasks(5, cells + ["d"])[:3] == tasks


@pytest.mark.slow
class TestSerialParallelDeterminism:
    def test_run_table1_identical_with_workers(self):
        kwargs = dict(
            datasets=("news",),
            scenarios=("substantial", "none"),
            strategies=("CFR-A", "CERL"),
            seed=0,
        )
        serial = run_table1(SMOKE, workers=1, **kwargs)
        parallel = run_table1(SMOKE, workers=4, **kwargs)
        assert serial.rows() == parallel.rows()

    def test_run_table2_identical_with_workers(self):
        kwargs = dict(strategies=("CFR-A",), ablations=(), seed=1, repetitions=2)
        serial = run_table2(SMOKE, workers=1, **kwargs)
        parallel = run_table2(SMOKE, workers=4, **kwargs)
        assert serial.results == parallel.results

    def test_run_stream_suite_identical_with_workers(self):
        generator = SyntheticDomainGenerator(SMOKE.synthetic_config(), seed=0)
        datasets = generator.generate_stream(3)
        model_config = SMOKE.model_config(seed=0)
        continual_config = SMOKE.continual_config(memory_budget=60)
        serial = run_stream_suite(
            datasets, ["CFR-B", "CERL"], model_config, continual_config, seed=0, workers=1
        )
        parallel = run_stream_suite(
            datasets, ["CFR-B", "CERL"], model_config, continual_config, seed=0, workers=4
        )
        for serial_result, parallel_result in zip(serial, parallel):
            assert serial_result.strategy == parallel_result.strategy
            assert serial_result.per_stage == parallel_result.per_stage
            assert serial_result.per_domain == parallel_result.per_domain
