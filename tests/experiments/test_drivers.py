"""Tests for the Table I / Table II / Figure 3 experiment drivers (smoke scale)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    SMOKE,
    run_cosine_ablation_stream,
    run_figure3_memory,
    run_figure3_sensitivity,
    run_table1,
    run_table2,
)


class TestTable1Driver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table1(
            SMOKE,
            datasets=("news",),
            scenarios=("substantial", "none"),
            strategies=("CFR-A", "CERL"),
            seed=0,
        )

    def test_rows_cover_all_cells(self, result):
        rows = result.rows()
        assert len(rows) == 2 * 2  # 2 scenarios x 2 strategies
        datasets = {row["dataset"] for row in rows}
        shifts = {row["shift"] for row in rows}
        assert datasets == {"news"}
        assert shifts == {"substantial", "none"}

    def test_all_metrics_finite(self, result):
        for row in result.rows():
            for key in ("prev_sqrt_pehe", "prev_ate_error", "new_sqrt_pehe", "new_ate_error"):
                assert np.isfinite(row[key])

    def test_get_accessor(self, result):
        cell = result.get("news", "substantial", "CERL")
        assert cell.strategy == "CERL"
        with pytest.raises(KeyError):
            result.get("news", "substantial", "CFR-X")

    def test_report_renders(self, result):
        report = result.report()
        assert "Table I" in report
        assert "CERL" in report

    def test_unknown_dataset_raises(self):
        with pytest.raises(ValueError):
            run_table1(SMOKE, datasets=("imdb",), scenarios=("none",), strategies=("CERL",))


class TestTable2Driver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table2(
            SMOKE,
            strategies=("CFR-B", "CERL"),
            ablations=("CERL (w/o herding)",),
            seed=0,
            repetitions=1,
        )

    def test_contains_requested_strategies(self, result):
        assert set(result.results) == {"CFR-B", "CERL", "CERL (w/o herding)"}

    def test_metrics_structure(self, result):
        for metrics in result.results.values():
            assert set(metrics) == {
                "prev_sqrt_pehe",
                "prev_ate_error",
                "new_sqrt_pehe",
                "new_ate_error",
            }
            assert all(np.isfinite(v) for v in metrics.values())

    def test_report_and_accessor(self, result):
        assert "Table II" in result.report()
        assert "prev_sqrt_pehe" in result.get("CERL")

    def test_multiple_repetitions_average(self):
        result = run_table2(
            SMOKE, strategies=("CFR-A",), ablations=(), seed=1, repetitions=2
        )
        assert result.repetitions == 2
        assert np.isfinite(result.get("CFR-A")["new_sqrt_pehe"])


class TestFigure3Driver:
    def test_memory_curves_structure(self):
        result = run_figure3_memory(
            SMOKE, memory_budgets=[20, 60], n_domains=2, include_ideal=True, seed=0
        )
        assert result.n_domains == 2
        assert set(result.curves) == {"CERL (M=20)", "CERL (M=60)", "Ideal (all data)"}
        for stages in result.curves.values():
            assert len(stages) == 2
        series = result.series("sqrt_pehe")
        assert all(len(values) == 2 for values in series.values())
        assert "Figure 3(a)" in result.report()

    def test_memory_curves_without_ideal(self):
        result = run_figure3_memory(
            SMOKE, memory_budgets=[30], n_domains=2, include_ideal=False, seed=0
        )
        assert list(result.curves) == ["CERL (M=30)"]

    def test_sensitivity_alpha(self):
        result = run_figure3_sensitivity("alpha", [0.1, 1.0], SMOKE, n_domains=2, seed=0)
        assert result.parameter == "alpha"
        assert len(result.values) == 2
        assert all(np.isfinite(v) for v in result.sqrt_pehe)
        assert result.relative_spread >= 1.0
        assert "alpha" in result.report()

    def test_sensitivity_delta(self):
        result = run_figure3_sensitivity("delta", [0.5, 2.0], SMOKE, n_domains=2, seed=0)
        assert result.parameter == "delta"
        assert len(result.rows()) == 2

    def test_sensitivity_invalid_parameter(self):
        with pytest.raises(ValueError):
            run_figure3_sensitivity("gamma", [0.1], SMOKE)
        with pytest.raises(ValueError):
            run_figure3_sensitivity("alpha", [], SMOKE)

    def test_cosine_ablation_stream(self):
        outcomes = run_cosine_ablation_stream(SMOKE, n_domains=2, seed=0)
        assert set(outcomes) == {"CERL", "CERL (w/o cosine norm)"}
        for metrics in outcomes.values():
            assert np.isfinite(metrics["sqrt_pehe"])
            assert np.isfinite(metrics["ate_error"])
