"""Tests for the end-to-end SLO suite driver."""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments.slo import _sized_tape, run_slo_suite

GATEABLE_SECTIONS = (
    "slo_throughput",
    "slo_availability",
    "slo_recovery",
    "slo_verification",
)

FAST = dict(
    total_rows=200,
    mean_rows_per_tick=16,
    n_clients=2,
    epochs=2,
    sample_per_tick=1,
)


class TestSizedTape:
    def test_clears_the_floor_and_is_deterministic(self):
        first = _sized_tape(["a", "b"], 5_000, 64, seed=9)
        second = _sized_tape(["a", "b"], 5_000, 64, seed=9)
        assert first.total_rows() >= 5_000
        assert first.fingerprint() == second.fingerprint()

    def test_bigger_floor_means_more_ticks(self):
        small = _sized_tape(["a"], 1_000, 32, seed=0)
        large = _sized_tape(["a"], 20_000, 32, seed=0)
        assert len(large) > len(small)
        assert large.total_rows() >= 20_000


class TestValidation:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown mode"):
            run_slo_suite(mode="carrier-pigeon", **FAST)

    def test_rejects_degenerate_fleet_shapes(self):
        with pytest.raises(ValueError, match="at least 2 streams"):
            run_slo_suite(mode="inproc", n_streams=1, **FAST)

    def test_rejects_empty_tape(self):
        with pytest.raises(ValueError, match="total_rows"):
            run_slo_suite(total_rows=0, mode="inproc")


class TestInprocSuite:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("slo") / "BENCH_slo.json"
        return run_slo_suite(mode="inproc", seed=3, out_path=out, **FAST)

    def test_replays_the_whole_tape_without_loss(self, result):
        assert result.mode == "inproc"
        assert result.tape_rows >= FAST["total_rows"]
        assert result.load.queries == result.tape_rows
        assert result.load.ok == result.tape_rows  # no faults in-process

    def test_sampled_responses_are_bitwise_exact(self, result):
        assert result.verified_samples > 0
        assert result.mismatched_samples == 0
        assert result.sample_parity

    def test_report_carries_every_gateable_section(self, result):
        for section in GATEABLE_SECTIONS:
            assert section in result.report, section
            assert "gate_metric" in result.report[section], section
        # Latency is informational only — absolute ms never gates.
        assert "gate_metric" not in result.report["slo_latency"]
        assert result.report["slo_verification"]["verified"] == 1.0
        assert result.report["slo_availability"]["ok_fraction"] == 1.0

    def test_report_is_written_as_valid_json(self, result):
        payload = json.loads(result.report_path.read_text())
        assert set(payload) >= {"generated_by", "python", "machine", "note"}
        assert payload["slo_latency"]["tape_fingerprint"] == result.tape_fingerprint


class TestEstimatorGenericSuite:
    """Any registered estimator rides the fleet + SLO harness unchanged.

    The R-learner is the stress case: crossfit nuisances, several internal
    models, its own checkpoint layout — yet the suite trains it through the
    registry, versions it, replays the tape, and bitwise-verifies sampled
    responses with zero special-casing in serve/monitor/slo code.
    """

    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("slo_rlearner") / "BENCH_slo.json"
        return run_slo_suite(
            mode="inproc", estimator="R-learner", seed=3, out_path=out, **FAST
        )

    def test_estimator_is_recorded(self, result):
        assert result.estimator == "R-learner"

    def test_full_tape_replayed(self, result):
        assert result.tape_rows >= FAST["total_rows"]
        assert result.load.ok == result.tape_rows

    def test_responses_bitwise_verified(self, result):
        assert result.verified_samples > 0
        assert result.mismatched_samples == 0
        assert result.sample_parity
        assert result.report["slo_verification"]["verified"] == 1.0

    def test_unknown_estimator_rejected_up_front(self):
        with pytest.raises(ValueError, match="CFR-A"):
            run_slo_suite(mode="inproc", estimator="Z-learner", **FAST)


class TestHonestGating:
    def test_multiproc_falls_back_to_inproc_on_one_core(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        result = run_slo_suite(mode="multiproc", seed=5, **FAST)
        assert result.mode == "inproc"
        assert result.gated
        assert "cores" in result.gate_reason
        # Machine-dependent sections gate; bitwise parity never does.
        assert result.report["slo_throughput"].get("gated") is True
        assert result.report["slo_throughput"]["gate_reason"] == result.gate_reason
        assert "gated" not in result.report["slo_verification"]
        assert result.report["slo_verification"]["verified"] == 1.0
