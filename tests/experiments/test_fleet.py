"""Tests for the fleet deployment driver (gateway + registry, end to end)."""

from __future__ import annotations

import pytest

from repro.experiments import SMOKE, run_fleet_deployment
from repro.serve import ModelRegistry, ShardRouter


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    """One fleet run shared by the assertions (training twice is waste)."""
    root = tmp_path_factory.mktemp("fleet_registry")
    result = run_fleet_deployment(
        n_streams=2,
        profile=SMOKE,
        queries_per_stream=12,
        clients_per_stream=2,
        registry_root=root,
        seed=5,
        epochs=2,
    )
    return result, root


class TestFleetDeployment:
    def test_every_response_is_bitwise_exact(self, fleet):
        result, _ = fleet
        assert result.parity
        assert all(report.mismatches == [] for report in result.streams)

    def test_adapted_stream_served_both_versions(self, fleet):
        result, _ = fleet
        adapted = next(r for r in result.streams if r.name == result.adapted_stream)
        assert adapted.versions == [0, 1]
        assert adapted.versions_served == [0, 1]
        assert result.adapted_version == 1

    def test_other_streams_kept_serving_version_zero(self, fleet):
        result, _ = fleet
        others = [r for r in result.streams if r.name != result.adapted_stream]
        assert others  # the fleet has more than the adapted stream
        for report in others:
            assert report.versions == [0]
            assert report.versions_served == [0]

    def test_shards_follow_the_deterministic_router(self, fleet):
        result, _ = fleet
        router = ShardRouter(2)  # n_shards defaults to min(n_streams, 4)
        for report in result.streams:
            assert report.shard == router.shard_for(report.name)

    def test_gateway_accounted_every_query(self, fleet):
        result, _ = fleet
        assert result.stats.answered == result.total_queries
        assert result.stats.shed == 0
        assert result.stats.in_flight == 0
        assert result.throughput_qps > 0

    def test_registry_persists_every_lineage(self, fleet):
        result, root = fleet
        registry = ModelRegistry(root)
        names = sorted(report.name for report in result.streams)
        assert registry.streams() == names
        adapted = result.adapted_stream
        assert registry.list_versions(adapted) == [0, 1]
        assert registry.head_version(adapted) == 1
        # The persisted head is loadable and answers like the live fleet did.
        restored = registry.load(adapted)
        assert restored.domains_seen == 2

    def test_summary_rows_shape(self, fleet):
        result, _ = fleet
        rows = result.summary_rows()
        assert len(rows) == len(result.streams)
        assert {"stream", "shard", "versions", "served", "queries", "parity"} <= set(
            rows[0]
        )
        assert all(row["parity"] == "exact" for row in rows)

    def test_invalid_adapt_stream(self):
        with pytest.raises(ValueError, match="adapt_stream"):
            run_fleet_deployment(n_streams=2, adapt_stream=2)
