"""End-to-end continual deployment: checkpoint each domain, reload, verify."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import DomainStream, SyntheticDomainGenerator
from repro.experiments import SMOKE, run_continual_deployment
from repro.serve import ModelRegistry, PredictionService


@pytest.fixture(scope="module")
def deployment(tmp_path_factory):
    """One three-domain deployment run, shared by the assertions below."""
    generator = SyntheticDomainGenerator(SMOKE.synthetic_config(n_units=200), seed=0)
    stream = DomainStream(generator.generate_stream(3), seed=0)
    registry = ModelRegistry(tmp_path_factory.mktemp("registry"))
    result = run_continual_deployment(
        stream,
        registry,
        SMOKE.model_config(seed=0, epochs=3),
        SMOKE.continual_config(memory_budget=50),
        stream_name="smoke",
        epochs=3,
    )
    return stream, registry, result


class TestContinualDeployment:
    def test_every_domain_checkpointed_and_head_is_latest(self, deployment):
        _, registry, result = deployment
        assert registry.list_versions("smoke") == [0, 1, 2]
        assert registry.head_version("smoke") == 2
        assert [stage.domain_index for stage in result.stages] == [0, 1, 2]

    def test_reloaded_versions_reproduce_live_metrics_exactly(self, deployment):
        """The acceptance criterion: for every checkpointed domain, the
        reloaded model's test metrics (incl. PEHE) are identical to the live
        learner's at the same point in the stream."""
        _, _, result = deployment
        assert result.parity, f"diverged at domains {result.mismatches()}"
        for stage in result.stages:
            assert len(stage.live_metrics) == stage.domain_index + 1
            assert stage.live_metrics == stage.reloaded_metrics  # exact floats

    def test_pehe_trajectory_is_finite(self, deployment):
        _, _, result = deployment
        trajectory = result.live_pehe_trajectory()
        assert len(trajectory) == 3
        assert all(np.isfinite(value) for value in trajectory)

    def test_registry_head_serves_like_the_final_live_learner(self, deployment):
        stream, registry, result = deployment
        covariates = stream[2].test.covariates
        with PredictionService.from_registry(
            registry, "smoke", max_batch=len(covariates)
        ) as service:
            assert service.model_version == 2
            reference = registry.load("smoke", 2).predict(covariates)
            response = service.predict_one(covariates[0])
            assert response.ite == reference.ite_hat[0]

    def test_verify_false_skips_reload_sweep(self, tmp_path):
        generator = SyntheticDomainGenerator(SMOKE.synthetic_config(n_units=200), seed=1)
        stream = DomainStream(generator.generate_stream(2), seed=1)
        result = run_continual_deployment(
            stream,
            ModelRegistry(tmp_path),
            SMOKE.model_config(seed=1, epochs=2),
            SMOKE.continual_config(memory_budget=40),
            stream_name="quickcheck",
            epochs=2,
            verify=False,
        )
        assert all(stage.reloaded_metrics == [] for stage in result.stages)
