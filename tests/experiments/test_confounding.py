"""Tests for the confounding-strength sweep (estimator zoo vs. selection bias)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    CONFOUNDING_ESTIMATORS,
    CONFOUNDING_STRENGTHS,
    SMOKE,
    run_confounding_sweep,
)
from repro.experiments.runner import StrategyResult

_SWEEP_ARGS = dict(
    profile=SMOKE,
    strengths=(0.0, 2.5),
    strategies=("S-learner", "R-learner"),
    seed=0,
)


def _avg_ate_error(result: StrategyResult) -> float:
    return (result.previous["ate_error"] + result.new["ate_error"]) / 2.0


@pytest.fixture(scope="module")
def sweep():
    return run_confounding_sweep(**_SWEEP_ARGS)


class TestDefaults:
    def test_grid_spans_rct_paper_and_strong_bias(self):
        assert CONFOUNDING_STRENGTHS == (0.0, 1.0, 2.5)
        assert "R-learner" in CONFOUNDING_ESTIMATORS
        assert "CERL" in CONFOUNDING_ESTIMATORS

    def test_empty_strengths_rejected(self):
        with pytest.raises(ValueError, match="at least one strength"):
            run_confounding_sweep(profile=SMOKE, strengths=())


class TestSweepStructure:
    def test_one_cell_per_strength_in_column_order(self, sweep):
        assert sweep.profile == "smoke"
        assert set(sweep.results) == {0.0, 2.5}
        for results in sweep.results.values():
            assert [r.strategy for r in results] == ["S-learner", "R-learner"]

    def test_rows_flatten_with_strength_column(self, sweep):
        rows = sweep.rows()
        assert len(rows) == 4
        assert {row["confounding"] for row in rows} == {0.0, 2.5}
        assert all("new_ate_error" in row for row in rows)

    def test_report_renders(self, sweep):
        report = sweep.report()
        assert "Confounding-strength sweep" in report
        assert "R-learner" in report

    def test_get_looks_up_cells(self, sweep):
        result = sweep.get(2.5, "R-learner")
        assert result.strategy == "R-learner"
        with pytest.raises(KeyError, match="Q-learner"):
            sweep.get(2.5, "Q-learner")


class TestOrthogonalAdvantage:
    """The sweep's reason to exist: under strong confounding the orthogonal
    R-learner (residual-on-residual with crossfit nuisances) beats the plain
    outcome regression, while under randomisation both are fine."""

    def test_s_learner_degrades_with_confounding(self, sweep):
        rct = _avg_ate_error(sweep.get(0.0, "S-learner"))
        confounded = _avg_ate_error(sweep.get(2.5, "S-learner"))
        assert confounded > rct

    def test_r_learner_beats_s_learner_under_strong_confounding(self, sweep):
        r_error = _avg_ate_error(sweep.get(2.5, "R-learner"))
        s_error = _avg_ate_error(sweep.get(2.5, "S-learner"))
        assert r_error < s_error


class TestDeterminism:
    def test_parallel_sweep_is_bit_identical_to_serial(self, sweep):
        parallel = run_confounding_sweep(
            workers=2, force_parallel=True, **_SWEEP_ARGS
        )
        assert parallel.rows() == sweep.rows()
