"""Baseline round-trip: suppression, justification enforcement, staleness."""

from __future__ import annotations

import json

import pytest

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.core import Finding


def make_finding(tmp_path, symbol="Service.fast_path", rule="RPR003"):
    return Finding(
        path=str(tmp_path / "src" / "mod.py"),
        line=10,
        col=4,
        rule=rule,
        message="guarded attribute accessed outside its lock",
        symbol=symbol,
    )


def write_baseline(tmp_path, entries):
    path = tmp_path / "analysis_baseline.json"
    path.write_text(json.dumps({"version": 1, "entries": entries}), encoding="utf-8")
    return path


GOOD_ENTRY = {
    "rule": "RPR003",
    "path": "src/mod.py",
    "symbol": "Service.fast_path",
    "justification": "deliberate lock-free advisory read",
}


class TestRoundTrip:
    def test_matching_finding_suppressed(self, tmp_path):
        baseline = Baseline.load(write_baseline(tmp_path, [GOOD_ENTRY]))
        assert baseline.suppresses(make_finding(tmp_path))
        assert baseline.unused_entries() == []

    def test_symbol_mismatch_not_suppressed(self, tmp_path):
        baseline = Baseline.load(write_baseline(tmp_path, [GOOD_ENTRY]))
        assert not baseline.suppresses(make_finding(tmp_path, symbol="Service.other"))
        # The entry matched nothing: it must surface as stale.
        assert len(baseline.unused_entries()) == 1

    def test_rule_mismatch_not_suppressed(self, tmp_path):
        baseline = Baseline.load(write_baseline(tmp_path, [GOOD_ENTRY]))
        assert not baseline.suppresses(make_finding(tmp_path, rule="RPR001"))

    def test_line_shift_does_not_break_match(self, tmp_path):
        # Baselines key on symbols, not line numbers.
        baseline = Baseline.load(write_baseline(tmp_path, [GOOD_ENTRY]))
        moved = Finding(
            path=str(tmp_path / "src" / "mod.py"),
            line=999,
            col=0,
            rule="RPR003",
            message="same contract, new line",
            symbol="Service.fast_path",
        )
        assert baseline.suppresses(moved)

    def test_empty_baseline_suppresses_nothing(self, tmp_path):
        assert not Baseline.empty().suppresses(make_finding(tmp_path))


class TestValidation:
    def test_missing_justification_rejected(self, tmp_path):
        entry = {k: v for k, v in GOOD_ENTRY.items() if k != "justification"}
        with pytest.raises(BaselineError, match="justification"):
            Baseline.load(write_baseline(tmp_path, [entry]))

    def test_blank_justification_rejected(self, tmp_path):
        entry = dict(GOOD_ENTRY, justification="   ")
        with pytest.raises(BaselineError, match="justification"):
            Baseline.load(write_baseline(tmp_path, [entry]))

    def test_unknown_rule_rejected(self, tmp_path):
        entry = dict(GOOD_ENTRY, rule="RPR999")
        with pytest.raises(BaselineError, match="unknown rule"):
            Baseline.load(write_baseline(tmp_path, [entry]))

    def test_non_object_entry_rejected(self, tmp_path):
        with pytest.raises(BaselineError, match="must be an object"):
            Baseline.load(write_baseline(tmp_path, ["not-a-dict"]))

    def test_wrong_top_level_shape_rejected(self, tmp_path):
        path = tmp_path / "analysis_baseline.json"
        path.write_text(json.dumps([GOOD_ENTRY]), encoding="utf-8")
        with pytest.raises(BaselineError, match="entries"):
            Baseline.load(path)

    def test_unreadable_file_rejected(self, tmp_path):
        with pytest.raises(BaselineError, match="cannot read"):
            Baseline.load(tmp_path / "missing.json")

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "analysis_baseline.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(BaselineError, match="cannot read"):
            Baseline.load(path)
