"""Per-rule fixture tests: one bad and one good fixture for every rule.

Fixtures are virtual modules — :class:`SourceModule` accepts the source
text directly, and the *path* controls scoping (``src/repro/serve/...``
puts a fixture in RPR002/RPR005 territory, ``src/repro/data/...`` grants
the RPR001 fixture exemption), so nothing is written to disk.
"""

from __future__ import annotations

import textwrap

from repro.analysis.core import SourceModule, guarded_attributes
from repro.analysis.rules import run_rules


def check(path: str, source: str, rules=None):
    mod = SourceModule(path, text=textwrap.dedent(source))
    return run_rules(mod, rules)


def rules_hit(path: str, source: str, rules=None):
    return sorted({f.rule for f in check(path, source, rules)})


# --------------------------------------------------------------------------- #
# RPR001 — rng-discipline
# --------------------------------------------------------------------------- #
class TestRngDiscipline:
    def test_legacy_global_state_api_flagged(self):
        findings = check(
            "src/repro/nn/fixture.py",
            """
            import numpy as np

            def draw():
                return np.random.normal(size=3)
            """,
            ["RPR001"],
        )
        assert [f.rule for f in findings] == ["RPR001"]
        assert "legacy global-state" in findings[0].message
        assert findings[0].symbol == "draw"

    def test_argless_default_rng_flagged(self):
        findings = check(
            "src/repro/nn/fixture.py",
            """
            import numpy as np

            def build(rng=None):
                return rng if rng is not None else np.random.default_rng()
            """,
            ["RPR001"],
        )
        assert len(findings) == 1
        assert "argless default_rng()" in findings[0].message

    def test_module_level_rng_flagged(self):
        findings = check(
            "src/repro/nn/fixture.py",
            """
            import numpy as np

            RNG = np.random.default_rng(1234)
            """,
            ["RPR001"],
        )
        assert len(findings) == 1
        assert "module-level RNG" in findings[0].message
        assert findings[0].symbol == "<module>"

    def test_seeded_parameter_flow_clean(self):
        assert not check(
            "src/repro/nn/fixture.py",
            """
            import numpy as np

            def build(seed):
                rng = np.random.default_rng(seed)
                return rng.normal(size=3)
            """,
            ["RPR001"],
        )

    def test_data_fixtures_exempt_from_argless(self):
        assert not check(
            "src/repro/data/fixture.py",
            """
            import numpy as np

            def sample():
                return np.random.default_rng().normal(size=3)
            """,
            ["RPR001"],
        )

    def test_from_import_alias_resolved(self):
        findings = check(
            "src/repro/nn/fixture.py",
            """
            from numpy.random import default_rng

            def build():
                return default_rng()
            """,
            ["RPR001"],
        )
        assert len(findings) == 1


# --------------------------------------------------------------------------- #
# RPR002 — wall-clock
# --------------------------------------------------------------------------- #
class TestWallClock:
    def test_time_time_in_serve_flagged(self):
        findings = check(
            "src/repro/serve/fixture.py",
            """
            import time

            def deadline():
                return time.time() + 5.0
            """,
            ["RPR002"],
        )
        assert len(findings) == 1
        assert "wall clock time.time" in findings[0].message

    def test_datetime_now_in_monitor_flagged(self):
        findings = check(
            "src/repro/monitor/fixture.py",
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """,
            ["RPR002"],
        )
        assert len(findings) == 1

    def test_perf_counter_outside_stats_module_flagged(self):
        findings = check(
            "src/repro/serve/fixture.py",
            """
            import time

            def measure():
                return time.perf_counter()
            """,
            ["RPR002"],
        )
        assert len(findings) == 1
        assert "stats/bench" in findings[0].message

    def test_perf_counter_in_stats_module_clean(self):
        assert not check(
            "src/repro/serve/stats.py",
            """
            import time

            def measure():
                return time.perf_counter()
            """,
            ["RPR002"],
        )

    def test_monotonic_clean(self):
        assert not check(
            "src/repro/serve/fixture.py",
            """
            import time

            def deadline():
                return time.monotonic() + 5.0
            """,
            ["RPR002"],
        )

    def test_out_of_scope_package_silent(self):
        assert not check(
            "src/repro/nn/fixture.py",
            """
            import time

            def now():
                return time.time()
            """,
            ["RPR002"],
        )

    def test_time_time_in_slo_flagged(self):
        # The SLO harness records latency on the *injected* monotonic clock;
        # wall clock reads would make replays irreproducible.
        findings = check(
            "src/repro/slo/fixture.py",
            """
            import time

            def stamp():
                return time.time()
            """,
            ["RPR002"],
        )
        assert len(findings) == 1

    def test_monotonic_in_slo_clean(self):
        assert not check(
            "src/repro/slo/fixture.py",
            """
            import time

            def tick():
                return time.monotonic()
            """,
            ["RPR002"],
        )

    def test_perf_counter_in_slo_flagged(self):
        # slo modules are not stats/bench stems: timing belongs to the
        # injected clock protocol, never an ad-hoc perf_counter.
        findings = check(
            "src/repro/slo/fixture.py",
            """
            import time

            def measure():
                return time.perf_counter()
            """,
            ["RPR002"],
        )
        assert len(findings) == 1

    def test_time_time_in_learner_zoo_flagged(self):
        # core/learners promises bitwise retrain determinism; a wall-clock
        # read there (e.g. a timing-based early stop) would break it.
        findings = check(
            "src/repro/core/learners.py",
            """
            import time

            def stamp():
                return time.time()
            """,
            ["RPR002"],
        )
        assert len(findings) == 1

    def test_time_time_in_estimator_api_flagged(self):
        findings = check(
            "src/repro/core/api.py",
            """
            import time

            def stamp():
                return time.time()
            """,
            ["RPR002"],
        )
        assert len(findings) == 1

    def test_rest_of_core_stays_out_of_scope(self):
        assert not check(
            "src/repro/core/classic.py",
            """
            import time

            def now():
                return time.time()
            """,
            ["RPR002"],
        )


# --------------------------------------------------------------------------- #
# RPR003 — lock-discipline
# --------------------------------------------------------------------------- #
LOCKED_CLASS = """
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._hits = 0  # guarded-by: _lock

    def {method}
"""


class TestLockDiscipline:
    def test_annotated_attribute_outside_lock_flagged(self):
        findings = check(
            "src/repro/serve/fixture.py",
            LOCKED_CLASS.format(method="bump(self):\n        self._hits += 1"),
            ["RPR003"],
        )
        assert len(findings) == 1
        assert "with self._lock:" in findings[0].message
        assert findings[0].symbol == "Counter.bump"

    def test_access_under_lock_clean(self):
        assert not check(
            "src/repro/serve/fixture.py",
            LOCKED_CLASS.format(
                method="bump(self):\n        with self._lock:\n            self._hits += 1"
            ),
            ["RPR003"],
        )

    def test_locked_suffix_method_exempt(self):
        assert not check(
            "src/repro/serve/fixture.py",
            LOCKED_CLASS.format(method="bump_locked(self):\n        self._hits += 1"),
            ["RPR003"],
        )

    def test_heuristic_registers_counter_in_single_lock_class(self):
        source = """
        import threading

        class Stats:
            def __init__(self):
                self._lock = threading.Lock()
                self.queries = 0

            def record(self):
                self.queries += 1
        """
        mod = SourceModule("src/repro/serve/fixture.py", text=textwrap.dedent(source))
        assert guarded_attributes(mod) == {"Stats": {"queries": {"_lock"}}}
        findings = run_rules(mod, ["RPR003"])
        assert len(findings) == 1 and findings[0].symbol == "Stats.record"

    def test_two_lock_class_gets_no_heuristic(self):
        assert not check(
            "src/repro/serve/fixture.py",
            """
            import threading

            class Stats:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._other = threading.Lock()
                    self.queries = 0

                def record(self):
                    self.queries += 1
            """,
            ["RPR003"],
        )

    def test_cross_object_access_checked_module_wide(self):
        source = """
        import threading

        class Shard:
            def __init__(self):
                self._lock = threading.Lock()
                self.answered = 0

        class Gateway:
            def total(self, shard):
                return shard.answered

            def total_safe(self, shard):
                with shard._lock:
                    return shard.answered
        """
        findings = check("src/repro/serve/fixture.py", source, ["RPR003"])
        assert [f.symbol for f in findings] == ["Gateway.total"]

    def test_frozen_dataclass_snapshot_exempt(self):
        assert not check(
            "src/repro/serve/fixture.py",
            """
            import threading
            from dataclasses import dataclass

            class Shard:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.answered = 0

            @dataclass(frozen=True)
            class Snapshot:
                answered: int

                @property
                def rate(self):
                    return self.answered / 2
            """,
            ["RPR003"],
        )

    def test_other_class_self_access_not_flagged(self):
        # self.answered in an unrelated class must not match Shard's registry.
        assert not check(
            "src/repro/serve/fixture.py",
            """
            import threading

            class Shard:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.answered = 0

            class Tally:
                def __init__(self):
                    self.answered = []

                def push(self, x):
                    self.answered.append(x)
            """,
            ["RPR003"],
        )


# --------------------------------------------------------------------------- #
# RPR004 — infer-purity
# --------------------------------------------------------------------------- #
class TestInferPurity:
    def test_tensor_construction_in_infer_flagged(self):
        findings = check(
            "src/repro/nn/fixture.py",
            """
            from .tensor import Tensor

            class Layer:
                def infer(self, x):
                    return self.forward(Tensor(x))
            """,
            ["RPR004"],
        )
        assert len(findings) == 1
        assert "Tensor construction" in findings[0].message

    def test_graph_attr_through_helper_closure_flagged(self):
        findings = check(
            "src/repro/nn/fixture.py",
            """
            class Layer:
                def infer(self, x):
                    return self._helper(x)

                def _helper(self, x):
                    return x._parents
            """,
            ["RPR004"],
        )
        assert len(findings) == 1
        assert "_parents" in findings[0].message
        assert findings[0].symbol == "Layer._helper"

    def test_forward_may_build_tensors(self):
        assert not check(
            "src/repro/nn/fixture.py",
            """
            from .tensor import Tensor

            class Layer:
                def forward(self, x):
                    return Tensor(x)
            """,
            ["RPR004"],
        )

    def test_tensor_module_itself_out_of_scope(self):
        assert not check(
            "src/repro/nn/tensor.py",
            """
            class Tensor:
                def infer_shape(self):
                    return self._parents
            """,
            ["RPR004"],
        )


# --------------------------------------------------------------------------- #
# RPR005 — atomic-writes
# --------------------------------------------------------------------------- #
class TestAtomicWrites:
    def test_bare_open_write_flagged(self):
        findings = check(
            "src/repro/serve/fixture.py",
            """
            def save(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
            """,
            ["RPR005"],
        )
        assert len(findings) == 1
        assert "atomic_write" in findings[0].message

    def test_np_save_flagged(self):
        findings = check(
            "src/repro/serve/fixture.py",
            """
            import numpy as np

            def save(path, array):
                np.save(path, array)
            """,
            ["RPR005"],
        )
        assert len(findings) == 1

    def test_write_text_flagged(self):
        findings = check(
            "src/repro/serve/fixture.py",
            """
            def save(path, text):
                path.write_text(text)
            """,
            ["RPR005"],
        )
        assert len(findings) == 1

    def test_write_inside_atomic_write_clean(self):
        assert not check(
            "src/repro/serve/fixture.py",
            """
            from ..utils import atomic_write

            def save(path, text):
                with atomic_write(path) as handle:
                    handle.write(text)
            """,
            ["RPR005"],
        )

    def test_read_open_clean(self):
        assert not check(
            "src/repro/serve/fixture.py",
            """
            def load(path):
                with open(path) as handle:
                    return handle.read()
            """,
            ["RPR005"],
        )

    def test_out_of_scope_package_silent(self):
        assert not check(
            "src/repro/nn/fixture.py",
            """
            def save(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
            """,
            ["RPR005"],
        )


# --------------------------------------------------------------------------- #
# RPR006 — tape-traceability
# --------------------------------------------------------------------------- #
class TestTapeTraceability:
    def test_rng_draw_in_feeds_flagged(self):
        findings = check(
            "src/repro/nn/fixture.py",
            """
            class Dropout:
                def feeds(self, x):
                    return {"mask": self._rng.uniform(size=x.shape)}
            """,
            ["RPR006"],
        )
        assert len(findings) == 1
        assert "RNG draw" in findings[0].message

    def test_numpy_random_call_in_feeds_flagged(self):
        findings = check(
            "src/repro/nn/fixture.py",
            """
            import numpy as np

            class Layer:
                def feeds(self, x):
                    return {"noise": np.random.default_rng(0).normal()}
            """,
            ["RPR006"],
        )
        assert findings and all(f.rule == "RPR006" for f in findings)

    def test_state_mutation_in_feeds_flagged(self):
        findings = check(
            "src/repro/nn/fixture.py",
            """
            class Layer:
                def feeds(self, x):
                    self._last_shape = x.shape
                    return {}
            """,
            ["RPR006"],
        )
        assert len(findings) == 1
        assert "mutates module state" in findings[0].message

    def test_pure_feeds_clean(self):
        assert not check(
            "src/repro/nn/fixture.py",
            """
            class Layer:
                def feeds(self, x):
                    return {"x": x, "scale": self.scale}
            """,
            ["RPR006"],
        )

    def test_rng_outside_feeds_clean(self):
        assert not check(
            "src/repro/nn/fixture.py",
            """
            class Layer:
                def forward(self, x, rng):
                    return rng.uniform(size=x.shape)
            """,
            ["RPR006"],
        )
