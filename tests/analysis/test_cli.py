"""CLI contract: exit codes 0/1/2, baseline wiring, ``python -m`` entry."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.analysis.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]

CLEAN_SOURCE = """
def double(x):
    return 2 * x
"""

# An argless default_rng() fallback: one RPR001 finding anywhere under repro/.
DIRTY_SOURCE = """
import numpy as np

def build(rng=None):
    return rng if rng is not None else np.random.default_rng()
"""


def write_module(tmp_path, source, package="nn"):
    target = tmp_path / "src" / "repro" / package / "fixture.py"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return target


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        target = write_module(tmp_path, CLEAN_SOURCE)
        assert main([str(target), "--no-baseline"]) == 0
        assert "clean" in capsys.readouterr().err

    def test_findings_exit_one(self, tmp_path, capsys):
        target = write_module(tmp_path, DIRTY_SOURCE)
        assert main([str(target), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "RPR001" in out and "[build]" in out

    def test_directory_walk_finds_nested_modules(self, tmp_path):
        write_module(tmp_path, DIRTY_SOURCE)
        assert main([str(tmp_path / "src"), "--no-baseline"]) == 1

    def test_unknown_rule_exits_two(self, tmp_path):
        target = write_module(tmp_path, CLEAN_SOURCE)
        assert main([str(target), "--rule", "RPR999"]) == 2

    def test_missing_path_exits_two(self, tmp_path):
        assert main([str(tmp_path / "nowhere")]) == 2

    def test_malformed_baseline_exits_two(self, tmp_path):
        target = write_module(tmp_path, CLEAN_SOURCE)
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"version": 1, "entries": [{}]}), encoding="utf-8")
        assert main([str(target), "--baseline", str(bad)]) == 2

    def test_syntax_error_reported_as_finding(self, tmp_path, capsys):
        target = write_module(tmp_path, "def broken(:\n")
        assert main([str(target), "--no-baseline"]) == 1
        assert "RPR000" in capsys.readouterr().out


class TestBaselineWiring:
    def test_baseline_suppresses_to_clean(self, tmp_path, capsys):
        target = write_module(tmp_path, DIRTY_SOURCE)
        baseline = tmp_path / "analysis_baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {
                            "rule": "RPR001",
                            "path": str(target.relative_to(tmp_path)),
                            "symbol": "build",
                            "justification": "fixture: suppression round-trip",
                        }
                    ],
                }
            ),
            encoding="utf-8",
        )
        assert main([str(target), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().err

    def test_unused_entry_warns_but_stays_clean(self, tmp_path, capsys):
        target = write_module(tmp_path, CLEAN_SOURCE)
        baseline = tmp_path / "analysis_baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {
                            "rule": "RPR001",
                            "path": "src/repro/nn/fixture.py",
                            "symbol": "gone",
                            "justification": "fixture: stale entry",
                        }
                    ],
                }
            ),
            encoding="utf-8",
        )
        assert main([str(target), "--baseline", str(baseline)]) == 0
        assert "unused baseline entry" in capsys.readouterr().err

    def test_no_baseline_flag_reports_everything(self, tmp_path):
        target = write_module(tmp_path, DIRTY_SOURCE)
        baseline = tmp_path / "analysis_baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {
                            "rule": "RPR001",
                            "path": str(target.relative_to(tmp_path)),
                            "symbol": "build",
                            "justification": "fixture: must be ignored",
                        }
                    ],
                }
            ),
            encoding="utf-8",
        )
        assert main([str(target), "--baseline", str(baseline), "--no-baseline"]) == 1


class TestRuleSelection:
    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006"):
            assert rule in out

    def test_rule_filter_scopes_the_run(self, tmp_path):
        target = write_module(tmp_path, DIRTY_SOURCE)
        assert main([str(target), "--rule", "RPR002", "--no-baseline"]) == 0
        assert main([str(target), "--rule", "RPR001", "--no-baseline"]) == 1


class TestModuleEntryPoint:
    def test_python_dash_m_invocation(self, tmp_path):
        target = write_module(tmp_path, DIRTY_SOURCE)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(target), "--no-baseline"],
            capture_output=True,
            text=True,
            env=env,
            cwd=str(tmp_path),
        )
        assert result.returncode == 1
        assert "RPR001" in result.stdout
