"""Self-check: the committed tree passes its own analyzer.

This is the test CI leans on — if a change violates an invariant, it fails
here (and in the lint job) before review, and every committed baseline
entry must still be earning its keep.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.cli import analyze_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"
BASELINE = REPO_ROOT / "analysis_baseline.json"


def test_source_tree_is_clean_under_committed_baseline():
    baseline = Baseline.load(BASELINE)
    findings = analyze_paths([SRC])
    unsuppressed = [f for f in findings if not baseline.suppresses(f)]
    assert unsuppressed == [], "\n" + "\n".join(f.render() for f in unsuppressed)


def test_committed_baseline_has_no_stale_entries():
    baseline = Baseline.load(BASELINE)
    for finding in analyze_paths([SRC]):
        baseline.suppresses(finding)
    stale = baseline.unused_entries()
    assert stale == [], (
        "stale baseline entries (the excused finding no longer exists): "
        + ", ".join(f"{e.rule} {e.symbol}" for e in stale)
    )


def test_benchmark_gate_is_clean():
    # The regression gate runs in CI next to the analyzer; it must not trip it.
    findings = analyze_paths([REPO_ROOT / "benchmarks" / "check_regression.py"])
    assert findings == []


def test_every_baseline_entry_is_justified_in_prose():
    baseline = Baseline.load(BASELINE)
    for entry in baseline.entries:
        # More than a token gesture: a sentence, not a tag.
        assert len(entry.justification.split()) >= 5, entry
