"""Tests for the versioned model registry (save → list → load → rollback)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import CERL
from repro.data import DomainStream
from repro.engine import Checkpoint, TrainerState
from repro.serve import ModelRegistry, PredictionService


@pytest.fixture
def stream(tiny_domains):
    return DomainStream(list(tiny_domains), seed=0)


@pytest.fixture
def trained_learner(stream, fast_model_config, fast_continual_config):
    learner = CERL(stream.n_features, fast_model_config, fast_continual_config)
    learner.observe(stream.train_data(0))
    return learner


class TestSaveListLoad:
    def test_round_trip_predictions_are_bit_identical(
        self, stream, trained_learner, tmp_path
    ):
        registry = ModelRegistry(tmp_path)
        registry.save("tiny", 0, trained_learner)
        trained_learner.observe(stream.train_data(1))
        registry.save("tiny", 1, trained_learner)

        assert registry.list_versions("tiny") == [0, 1]
        assert registry.head_version("tiny") == 1

        covariates = stream[1].test.covariates
        restored = registry.load("tiny")  # default: head
        np.testing.assert_array_equal(
            restored.predict(covariates).ite_hat,
            trained_learner.predict(covariates).ite_hat,
        )
        assert restored.domains_seen == 2

    def test_versions_are_immutable_snapshots(self, stream, trained_learner, tmp_path):
        """Saving later versions must not disturb earlier ones."""
        registry = ModelRegistry(tmp_path)
        registry.save("tiny", 0, trained_learner)
        covariates = stream[0].test.covariates
        before = trained_learner.predict(covariates).ite_hat.copy()
        trained_learner.observe(stream.train_data(1))
        registry.save("tiny", 1, trained_learner)

        v0 = registry.load("tiny", 0)
        np.testing.assert_array_equal(v0.predict(covariates).ite_hat, before)
        assert v0.domains_seen == 1

    def test_entry_metadata(self, trained_learner, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.save("tiny", 0, trained_learner, metadata={"note": "first arrival"})
        entry = registry.entry("tiny", 0)
        assert entry.domains_seen == 1
        assert entry.n_features == trained_learner.n_features
        assert entry.metadata == {"note": "first arrival"}
        assert entry.path.exists()

    def test_streams_listing(self, trained_learner, tmp_path):
        registry = ModelRegistry(tmp_path)
        assert registry.streams() == []
        registry.save("alpha", 0, trained_learner)
        registry.save("beta.v2", 0, trained_learner)
        assert registry.streams() == ["alpha", "beta.v2"]

    def test_saver_drives_engine_checkpoint_callback(
        self, trained_learner, tmp_path
    ):
        """The registry plugs into repro.engine.Checkpoint unchanged."""
        registry = ModelRegistry(tmp_path)
        checkpointer = Checkpoint(registry.saver("tiny", trained_learner), every=1)
        state = TrainerState()
        state.epoch = 0
        checkpointer.on_epoch_end(state)
        checkpointer.on_train_end(state)  # dedup: must not save twice
        assert checkpointer.saved_epochs == [0]
        assert registry.list_versions("tiny") == [0]


class TestRollback:
    def test_rollback_moves_head_without_deleting(
        self, stream, trained_learner, tmp_path
    ):
        registry = ModelRegistry(tmp_path)
        registry.save("tiny", 0, trained_learner)
        trained_learner.observe(stream.train_data(1))
        registry.save("tiny", 1, trained_learner)

        entry = registry.rollback("tiny", 0)
        assert entry.domain_index == 0
        assert registry.head_version("tiny") == 0
        assert registry.list_versions("tiny") == [0, 1]  # nothing deleted
        assert registry.load("tiny").domains_seen == 1  # head serves v0

        registry.rollback("tiny", 1)  # roll forward again
        assert registry.load("tiny").domains_seen == 2

    def test_rollback_to_unknown_version_raises(self, trained_learner, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.save("tiny", 0, trained_learner)
        with pytest.raises(KeyError, match="no version 7"):
            registry.rollback("tiny", 7)

    def test_save_after_rollback_preserves_existing_versions(
        self, stream, trained_learner, tmp_path
    ):
        """Rollback-then-save: the new version must join the history without
        clobbering or reordering anything saved before the rollback."""
        registry = ModelRegistry(tmp_path)
        covariates = stream[0].test.covariates
        references = {}
        for domain_index in (0, 1):
            if domain_index:
                trained_learner.observe(stream.train_data(domain_index))
            registry.save("tiny", domain_index, trained_learner)
            references[domain_index] = trained_learner.predict(covariates).ite_hat.copy()

        registry.rollback("tiny", 0)
        assert registry.head_version("tiny") == 0

        # Saving while head points at an older version: head semantics are
        # pinned to "save promotes the saved version", and v1 — the version
        # the head had skipped past — survives untouched.
        registry.save("tiny", 2, trained_learner)
        references[2] = trained_learner.predict(covariates).ite_hat.copy()
        assert registry.list_versions("tiny") == [0, 1, 2]
        assert registry.head_version("tiny") == 2
        for domain_index, expected in references.items():
            np.testing.assert_array_equal(
                registry.load("tiny", domain_index).predict(covariates).ite_hat,
                expected,
            )

    def test_resave_after_rollback_overwrites_only_that_version(
        self, stream, trained_learner, tmp_path
    ):
        registry = ModelRegistry(tmp_path)
        covariates = stream[0].test.covariates
        registry.save("tiny", 0, trained_learner)
        v0_reference = trained_learner.predict(covariates).ite_hat.copy()
        trained_learner.observe(stream.train_data(1))
        registry.save("tiny", 1, trained_learner)

        registry.rollback("tiny", 0)
        registry.save("tiny", 1, trained_learner)  # idempotent re-deploy of v1
        assert registry.list_versions("tiny") == [0, 1]
        assert registry.head_version("tiny") == 1  # save promotes the version
        np.testing.assert_array_equal(
            registry.load("tiny", 0).predict(covariates).ite_hat, v0_reference
        )


class TestValidationAndFailureModes:
    def test_unknown_stream_raises(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        with pytest.raises(FileNotFoundError, match="no checkpoints"):
            registry.load("ghost")

    def test_invalid_stream_name_rejected(self, trained_learner, tmp_path):
        registry = ModelRegistry(tmp_path)
        for bad in ("", "../escape", "a/b", ".hidden"):
            with pytest.raises(ValueError, match="invalid stream name"):
                registry.save(bad, 0, trained_learner)

    def test_negative_domain_index_rejected(self, trained_learner, tmp_path):
        with pytest.raises(ValueError, match="non-negative"):
            ModelRegistry(tmp_path).save("tiny", -1, trained_learner)

    def test_manifest_format_version_checked(self, trained_learner, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.save("tiny", 0, trained_learner)
        manifest_path = tmp_path / "tiny" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 999
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="unsupported registry manifest format"):
            registry.load("tiny")

    def test_missing_archive_behind_manifest_raises(self, trained_learner, tmp_path):
        registry = ModelRegistry(tmp_path)
        entry = registry.save("tiny", 0, trained_learner)
        entry.path.unlink()
        with pytest.raises(FileNotFoundError, match="missing on disk"):
            registry.load("tiny", 0)


class TestMmapLoading:
    def test_mmap_load_matches_eager_bitwise(self, stream, trained_learner, tmp_path):
        """``registry.load(mmap_mode='r')`` is the shard workers' path: the
        mapped learner must predict bit-for-bit like the eager one."""
        registry = ModelRegistry(tmp_path)
        registry.save("tiny", 0, trained_learner)
        covariates = stream[0].test.covariates

        eager = registry.load("tiny", 0)
        mapped = registry.load("tiny", 0, mmap_mode="r")
        assert isinstance(mapped.encoder.scaler.mean_, np.memmap)
        np.testing.assert_array_equal(
            mapped.predict(covariates).ite_hat, eager.predict(covariates).ite_hat
        )

    def test_resave_while_reader_holds_old_mapping(
        self, stream, trained_learner, tmp_path
    ):
        """Atomic replace under a live reader: overwriting a version must not
        disturb a learner that mapped the old archive — it keeps serving the
        old bytes until it reloads, while fresh loads see the new model."""
        registry = ModelRegistry(tmp_path)
        registry.save("tiny", 0, trained_learner)
        covariates = stream[0].test.covariates
        old_reference = trained_learner.predict(covariates).ite_hat.copy()

        held = registry.load("tiny", 0, mmap_mode="r")

        # Overwrite version 0 in place (registry saves are temp + os.replace).
        trained_learner.observe(stream.train_data(1))
        registry.save("tiny", 0, trained_learner)
        new_reference = trained_learner.predict(covariates).ite_hat

        np.testing.assert_array_equal(held.predict(covariates).ite_hat, old_reference)
        fresh = registry.load("tiny", 0, mmap_mode="r")
        np.testing.assert_array_equal(fresh.predict(covariates).ite_hat, new_reference)
        assert not np.array_equal(old_reference, new_reference)


class TestServiceRegistryIntegration:
    def test_service_from_registry_and_reload_after_rollback(
        self, stream, trained_learner, tmp_path
    ):
        registry = ModelRegistry(tmp_path)
        registry.save("tiny", 0, trained_learner)
        covariates = stream[0].test.covariates
        v0_reference = trained_learner.predict(covariates)
        trained_learner.observe(stream.train_data(1))
        registry.save("tiny", 1, trained_learner)

        with PredictionService.from_registry(
            registry, "tiny", max_batch=len(covariates)
        ) as service:
            assert service.model_version == 1
            registry.rollback("tiny", 0)
            assert service.reload(registry, "tiny") == 0
            response = service.predict_one(covariates[0])
            assert response.model_version == 0
            assert response.ite == v0_reference.ite_hat[0]
