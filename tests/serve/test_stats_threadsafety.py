"""Thread-safety of the stats snapshots under concurrent load.

Audit outcome (pinned here): the :class:`MicroBatcher` counters
(``_queries``/``_batches``/``_largest_batch``) are mutated *only* on the
dispatcher thread and only while holding the batcher's condition lock, and
``stats()`` reads all three under the same lock — so a snapshot is always
internally consistent (no torn reads), even while submitting threads hammer
the queue.  The gateway's shard counters follow the same discipline (one lock
per shard, snapshot taken under it).  These tests hammer both from many
threads and assert the invariants that a torn or unlocked read would break.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.serve import MicroBatcher, Overloaded, ServingGateway


class LinearStub:
    n_features = 4

    def predict(self, covariates: np.ndarray):
        class Estimate:
            pass

        estimate = Estimate()
        estimate.y0_hat = covariates.sum(axis=1)
        estimate.y1_hat = covariates.sum(axis=1) * 2.0
        estimate.ite_hat = estimate.y1_hat - estimate.y0_hat
        return estimate


def test_microbatcher_stats_snapshots_are_consistent_under_hammer():
    n_threads, per_thread = 8, 150

    def run_batch(stacked):
        total = stacked.sum(axis=1)
        return total, total, total, None

    batcher = MicroBatcher(run_batch, max_batch=16)
    violations: list = []
    stop_polling = threading.Event()
    barrier = threading.Barrier(n_threads + 2)

    def submitter(thread_index: int) -> None:
        barrier.wait()
        pendings = [batcher.submit(np.ones(3)) for _ in range(per_thread)]
        for pending in pendings:
            pending.result(timeout=30.0)

    def poller() -> None:
        barrier.wait()
        last_queries = last_batches = 0
        while not stop_polling.is_set():
            snapshot = batcher.stats()
            # A torn read would let one counter run ahead of the others or
            # jump backwards; every snapshot must satisfy all invariants.
            if snapshot.batches > snapshot.queries:
                violations.append(("batches>queries", snapshot))
            if snapshot.largest_batch > snapshot.queries:
                violations.append(("largest>queries", snapshot))
            if snapshot.largest_batch > 16:
                violations.append(("largest>max_batch", snapshot))
            if snapshot.queries < last_queries or snapshot.batches < last_batches:
                violations.append(("non-monotonic", snapshot))
            if snapshot.batches and not snapshot.mean_batch >= 1.0:
                violations.append(("mean<1", snapshot))
            last_queries, last_batches = snapshot.queries, snapshot.batches

    threads = [threading.Thread(target=submitter, args=(i,)) for i in range(n_threads)]
    pollers = [threading.Thread(target=poller) for _ in range(2)]
    for thread in threads + pollers:
        thread.start()
    for thread in threads:
        thread.join()
    stop_polling.set()
    for thread in pollers:
        thread.join()
    batcher.close()

    assert violations == []
    final = batcher.stats()
    assert final.queries == n_threads * per_thread
    assert 1 <= final.batches <= final.queries


def test_gateway_stats_snapshots_are_consistent_under_hammer():
    n_threads, per_thread, bound = 8, 100, 64
    with ServingGateway(
        loader=lambda stream: (LinearStub(), 0),
        n_shards=2,
        max_batch=8,
        max_pending_per_shard=bound,
        cache_capacity=32,
    ) as gateway:
        violations: list = []
        stop_polling = threading.Event()
        shed_per_thread = [0] * n_threads
        barrier = threading.Barrier(n_threads + 2)

        def client(thread_index: int) -> None:
            rng = np.random.default_rng(thread_index)
            stream = f"s{thread_index % 3}"
            barrier.wait()
            for _ in range(per_thread):
                row = np.round(rng.random(4), 2)  # small value space → hits
                try:
                    gateway.predict_one(stream, row, timeout=30.0)
                except Overloaded:  # expected under hammer
                    shed_per_thread[thread_index] += 1

        def poller() -> None:
            barrier.wait()
            last_answered = 0
            while not stop_polling.is_set():
                stats = gateway.stats()
                for shard_stats in stats.shards:
                    if not 0 <= shard_stats.in_flight <= bound:
                        violations.append(("in_flight", shard_stats))
                    if not 0.0 <= shard_stats.occupancy <= 1.0:
                        violations.append(("occupancy", shard_stats))
                    if shard_stats.latency_samples > shard_stats.answered:
                        violations.append(("latency>answered", shard_stats))
                    if shard_stats.cache.hits + shard_stats.cache.misses < 0:
                        violations.append(("cache", shard_stats))
                if stats.answered < last_answered:
                    violations.append(("non-monotonic", stats))
                last_answered = stats.answered

        threads = [threading.Thread(target=client, args=(i,)) for i in range(n_threads)]
        pollers = [threading.Thread(target=poller) for _ in range(2)]
        for thread in threads + pollers:
            thread.start()
        for thread in threads:
            thread.join()
        stop_polling.set()
        for thread in pollers:
            thread.join()

        assert violations == []
        final = gateway.stats()
        assert final.answered + final.shed == n_threads * per_thread
        assert final.shed == sum(shed_per_thread)
        assert final.in_flight == 0
