"""Tests for the micro-batching prediction service.

The load-bearing property is exactness under concurrency: every coalesced
response must be bit-identical to a direct batched ``predict`` over the same
units, no matter how the dispatcher happened to cut the batches.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import CERL, ContinualConfig, ModelConfig
from repro.data import DomainStream, SyntheticConfig, SyntheticDomainGenerator
from repro.serve import MicroBatcher, PredictionService


@pytest.fixture(scope="module")
def served():
    """A trained learner, its stream, and a bank of query rows.

    Module-scoped (training once is enough): every test treats the learner as
    read-only serving state.
    """
    generator = SyntheticDomainGenerator(
        SyntheticConfig(
            n_confounders=6,
            n_instruments=3,
            n_irrelevant=4,
            n_adjustment=6,
            n_units=160,
            domain_mean_shift=1.5,
            outcome_scale=5.0,
        ),
        seed=7,
    )
    stream = DomainStream(
        [generator.generate_domain(0), generator.generate_domain(1)], seed=0
    )
    model_config = ModelConfig(
        representation_dim=8,
        encoder_hidden=(16,),
        outcome_hidden=(8,),
        epochs=4,
        batch_size=64,
        sinkhorn_iterations=10,
        seed=3,
    )
    continual_config = ContinualConfig(memory_budget=40, rehearsal_batch_size=32)
    learner = CERL(stream.n_features, model_config, continual_config)
    learner.observe(stream.train_data(0))
    learner.observe(stream.train_data(1))
    queries = np.concatenate(
        [stream[0].test.covariates, stream[1].test.covariates], axis=0
    )
    return learner, stream, queries


class TestSingleQueries:
    def test_predict_one_matches_direct_batched_predict(self, served):
        learner, _, queries = served
        # The canonical execution size equals the reference batch, so the
        # bit-identical guarantee is unconditional (see service module doc).
        reference = learner.predict(queries)
        with PredictionService(
            learner, model_version=1, max_batch=len(queries)
        ) as service:
            for index in (0, 3, 17):
                response = service.predict_one(queries[index])
                assert response.mu0 == reference.y0_hat[index]
                assert response.mu1 == reference.y1_hat[index]
                assert response.ite == reference.ite_hat[index]
                assert response.model_version == 1

    def test_accepts_row_and_1xp_shapes(self, served):
        learner, _, queries = served
        with PredictionService(learner) as service:
            flat = service.predict_one(queries[0])
            two_d = service.predict_one(queries[0][None, :])
            assert flat == two_d

    def test_submitted_rows_are_snapshotted(self, served):
        """A client may reuse one buffer across asynchronous submits; each
        queued query must answer for the values at submit time, not whatever
        the buffer holds when the batch is finally cut."""
        learner, _, queries = served
        reference = learner.predict(queries)
        with PredictionService(
            learner, max_batch=len(queries), max_wait_ms=200.0
        ) as service:
            buffer = np.array(queries[0])
            first = service.submit(buffer)
            buffer[:] = queries[1]  # overwritten inside the coalescing window
            second = service.submit(buffer)
            assert first.result(timeout=30.0).ite == reference.ite_hat[0]
            assert second.result(timeout=30.0).ite == reference.ite_hat[1]

    def test_rejects_malformed_queries(self, served):
        learner, _, queries = served
        with PredictionService(learner) as service:
            with pytest.raises(ValueError, match="1-D covariate vector"):
                service.submit(queries[:2])
            with pytest.raises(ValueError, match="model expects"):
                service.submit(queries[0][:3])

    def test_direct_predict_passthrough(self, served):
        learner, _, queries = served
        with PredictionService(learner) as service:
            np.testing.assert_array_equal(
                service.predict(queries).ite_hat, learner.predict(queries).ite_hat
            )

    def test_submit_after_close_raises(self, served):
        learner, _, queries = served
        service = PredictionService(learner)
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(queries[0])


class TestConcurrentLoad:
    def test_hammered_service_is_bit_identical_to_serial_reference(self, served):
        """Many client threads, answers checked one by one against a serial
        direct batched ``Module.infer``-path reference (acceptance criterion)."""
        learner, _, queries = served
        reference = learner.predict(queries)
        n_threads, per_thread = 8, 40
        assert len(queries) >= per_thread

        with PredictionService(
            learner, max_batch=len(queries), max_wait_ms=1.0
        ) as service:
            failures: list = []
            barrier = threading.Barrier(n_threads)

            def client(thread_index: int) -> None:
                rng = np.random.default_rng(thread_index)
                indices = rng.integers(0, len(queries), size=per_thread)
                barrier.wait()  # maximise interleaving
                pendings = [(i, service.submit(queries[i])) for i in indices]
                for query_index, pending in pendings:
                    response = pending.result(timeout=30.0)
                    if (
                        response.mu0 != reference.y0_hat[query_index]
                        or response.mu1 != reference.y1_hat[query_index]
                        or response.ite != reference.ite_hat[query_index]
                    ):
                        failures.append(query_index)

            threads = [
                threading.Thread(target=client, args=(index,))
                for index in range(n_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = service.stats()

        assert failures == []
        assert stats.queries == n_threads * per_thread
        # The whole point of the batcher: far fewer forwards than queries.
        assert stats.batches < stats.queries
        assert stats.largest_batch > 1

    def test_hot_swap_under_load_serves_consistent_versions(self, served):
        """Swapping the model mid-stream must never mix versions within one
        response: each answer matches the reference of the version it reports."""
        learner, stream, queries = served

        single = CERL(
            stream.n_features, learner.model_config, learner.continual_config
        )
        single.observe(stream.train_data(0))
        ref_by_version = {
            0: single.predict(queries),
            1: learner.predict(queries),
        }

        with PredictionService(
            learner, model_version=1, max_batch=len(queries)
        ) as service:
            stop = threading.Event()

            def swapper() -> None:
                flip = 0
                while not stop.is_set():
                    flip ^= 1
                    model = learner if flip else single
                    service.swap_model(model, model_version=flip)

            swap_thread = threading.Thread(target=swapper)
            swap_thread.start()
            try:
                for round_index in range(50):
                    query_index = round_index % len(queries)
                    response = service.predict_one(queries[query_index], timeout=30.0)
                    reference = ref_by_version[response.model_version]
                    assert response.mu0 == reference.y0_hat[query_index]
                    assert response.mu1 == reference.y1_hat[query_index]
                    assert response.ite == reference.ite_hat[query_index]
            finally:
                stop.set()
                swap_thread.join()


class TestMicroBatcher:
    def test_coalesces_up_to_max_batch(self):
        seen_sizes: list = []

        def run_batch(stacked):
            seen_sizes.append(stacked.shape[0])
            total = stacked.sum(axis=1)
            return total, total + 1.0, np.ones(len(stacked)), None

        batcher = MicroBatcher(run_batch, max_batch=4, max_wait_ms=20.0)
        pendings = [batcher.submit(np.full(3, float(i))) for i in range(10)]
        results = [p.result(timeout=10.0) for p in pendings]
        batcher.close()
        assert all(size <= 4 for size in seen_sizes)
        assert [r.mu0 for r in results] == [3.0 * i for i in range(10)]

    def test_batch_failure_propagates_to_every_caller_and_survives(self):
        calls = {"count": 0}

        def run_batch(stacked):
            calls["count"] += 1
            if calls["count"] == 1:
                raise RuntimeError("model exploded")
            total = stacked.sum(axis=1)
            return total, total, np.zeros(len(stacked)), None

        batcher = MicroBatcher(run_batch, max_batch=8, max_wait_ms=0.0)
        failing = batcher.submit(np.ones(2))
        with pytest.raises(RuntimeError, match="model exploded"):
            failing.result(timeout=10.0)
        # The dispatcher must outlive a failed batch.
        ok = batcher.submit(np.ones(2))
        assert ok.result(timeout=10.0).mu0 == 2.0
        batcher.close()

    def test_close_drains_queued_work(self):
        release = threading.Event()

        def run_batch(stacked):
            release.wait(10.0)
            total = stacked.sum(axis=1)
            return total, total, total, None

        batcher = MicroBatcher(run_batch, max_batch=1, max_wait_ms=0.0)
        pendings = [batcher.submit(np.array([float(i)])) for i in range(3)]
        release.set()
        batcher.close()
        assert [p.result(timeout=1.0).mu0 for p in pendings] == [0.0, 1.0, 2.0]

    def test_invalid_parameters(self):
        run = lambda stacked: (None, None, None, None)  # noqa: E731
        with pytest.raises(ValueError):
            MicroBatcher(run, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(run, max_wait_ms=-1.0)


class TestMicroBatcherClose:
    def test_submit_after_close_raises_instead_of_hanging(self):
        """A query enqueued after close() would never be dispatched and its
        caller would block forever on .result(); submit must fail loudly."""

        def run_batch(stacked):
            total = stacked.sum(axis=1)
            return total, total, total, None

        batcher = MicroBatcher(run_batch, max_batch=4)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed MicroBatcher"):
            batcher.submit(np.ones(2))
        batcher.close()  # idempotent

    def test_close_concurrent_with_submitters_never_loses_answers(self):
        """Racing submit against close: every submit either raises the closed
        error or returns a handle that resolves — no silent hangs."""

        def run_batch(stacked):
            total = stacked.sum(axis=1)
            return total, total, total, None

        batcher = MicroBatcher(run_batch, max_batch=4)
        outcomes: list = []
        barrier = threading.Barrier(4)

        def client() -> None:
            barrier.wait()
            for _ in range(50):
                try:
                    pending = batcher.submit(np.ones(2))
                except RuntimeError:
                    outcomes.append("rejected")
                    return
                outcomes.append(pending.result(timeout=10.0).mu0)

        def closer() -> None:
            barrier.wait()
            batcher.close()

        threads = [threading.Thread(target=client) for _ in range(3)]
        threads.append(threading.Thread(target=closer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(outcome == 2.0 or outcome == "rejected" for outcome in outcomes)


class TestTrafficObservers:
    def test_observers_see_submitted_rows_in_order(self, served):
        learner, _, queries = served
        seen: list = []
        with PredictionService(learner, max_batch=8) as service:
            service.add_observer(seen.append)
            for index in range(3):
                service.predict_one(queries[index])
        assert [rows.shape for rows in seen] == [(1, queries.shape[1])] * 3
        np.testing.assert_array_equal(np.concatenate(seen), queries[:3])

    def test_observers_see_direct_predict_batches(self, served):
        learner, _, queries = served
        seen: list = []
        with PredictionService(learner) as service:
            service.add_observer(seen.append)
            service.predict(queries[:5])
        assert len(seen) == 1 and seen[0].shape == (5, queries.shape[1])

    def test_removed_observer_stops_seeing_traffic(self, served):
        learner, _, queries = served
        seen: list = []
        with PredictionService(learner) as service:
            service.add_observer(seen.append)
            service.predict_one(queries[0])
            service.remove_observer(seen.append)
            service.predict_one(queries[1])
        assert len(seen) == 1

    def test_rejected_submit_is_not_recorded(self, served):
        """A closed service must not phantom-record queries it rejected."""
        learner, _, queries = served
        seen: list = []
        service = PredictionService(learner)
        service.add_observer(seen.append)
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(queries[0])
        assert seen == []

    def test_failed_predict_is_not_recorded(self, served):
        """Queries that were never answered must not enter drift windows."""
        learner, _, queries = served
        seen: list = []

        class ExplodingLearner:
            n_features = learner.n_features

            def predict(self, covariates):
                raise RuntimeError("model exploded")

        with PredictionService(ExplodingLearner()) as service:
            service.add_observer(seen.append)
            with pytest.raises(RuntimeError, match="model exploded"):
                service.predict(queries[:4])
            failing = service.submit(queries[0])
            with pytest.raises(RuntimeError, match="model exploded"):
                failing.result(timeout=30.0)
        assert seen == []

    def test_observed_rows_are_read_only(self, served):
        """A misbehaving observer must not be able to rewrite queued queries
        or the caller's own covariate array."""
        learner, _, queries = served
        seen: list = []
        with PredictionService(learner, max_batch=4) as service:
            service.add_observer(seen.append)
            service.predict_one(queries[0])
            service.predict(queries[:3])
        assert len(seen) == 2
        for rows in seen:
            assert not rows.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                rows[0, 0] = 0.0
        assert queries.flags.writeable  # the caller's array stays writable
