"""Wire-protocol edge cases for the fleet's length-prefixed framing.

The protocol carries every cross-process query, so its failure modes are
pinned explicitly: truncation mid-prefix / mid-header / mid-payload raises
:class:`TruncatedFrame` naming the part, oversized declarations are rejected
*before allocation* with :class:`FrameTooLarge`, and both sides normalise /
reject dtypes identically (float32 or strided input is converted exactly once
by ``encode_rows``; a payload that skipped it is refused by ``decode_array``
rather than reinterpreted).  Sync and async readers share the same contract.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct

import numpy as np
import pytest

from repro.serve.fleet.wire import (
    DEFAULT_MAX_PAYLOAD_BYTES,
    MAX_HEADER_BYTES,
    WIRE_DTYPE,
    FrameTooLarge,
    ProtocolError,
    TruncatedFrame,
    WireError,
    array_header,
    decode_array,
    encode_rows,
    read_frame,
    read_frame_async,
    write_frame,
)

_PREFIX = struct.Struct(">II")


def frame_bytes(header: dict, payload: bytes = b"") -> bytes:
    raw = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return _PREFIX.pack(len(raw), len(payload)) + raw + payload


@pytest.fixture
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


def read_after(writer, reader, data: bytes, **kwargs):
    """Write ``data``, close the writer, then read one frame."""
    writer.sendall(data)
    writer.close()
    return read_frame(reader, **kwargs)


class TestEncodeRows:
    def test_vector_becomes_single_row(self):
        rows = encode_rows(np.arange(4.0))
        assert rows.shape == (1, 4)

    def test_float32_is_upcast_exactly_once_client_side(self):
        single = np.array([[0.1, 0.2]], dtype=np.float32)
        rows = encode_rows(single)
        assert rows.dtype == np.float64
        # Exact upcast: every float32 is representable in float64.
        np.testing.assert_array_equal(rows, single.astype(np.float64))

    def test_non_contiguous_slice_is_normalised(self):
        base = np.arange(24.0).reshape(4, 6)
        strided = base[:, ::2]
        assert not strided.flags["C_CONTIGUOUS"]
        rows = encode_rows(strided)
        assert rows.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(rows, strided)

    def test_list_input_accepted(self):
        rows = encode_rows([[1, 2], [3, 4]])
        assert rows.dtype == np.float64 and rows.shape == (2, 2)

    def test_higher_rank_rejected(self):
        with pytest.raises(ProtocolError, match="1-D vector or a 2-D"):
            encode_rows(np.zeros((2, 3, 4)))

    def test_scalar_becomes_one_feature_row(self):
        # np.ascontiguousarray promotes 0-d to 1-d, so a bare scalar is a
        # single one-feature unit (the feature-count check lives server-side).
        assert encode_rows(np.float64(3.0)).shape == (1, 1)

    def test_normalised_then_declared_then_decoded_is_bitwise(self):
        """The full client-side pipeline both sides agree on: float32 and
        strided inputs produce identical bytes to their float64 originals."""
        base = np.arange(24.0).reshape(4, 6)
        for variant in (base, base.astype(np.float32), base[:, :].T.copy().T):
            rows = encode_rows(variant)
            decoded = decode_array(array_header(rows), rows.tobytes())
            assert decoded.tobytes() == np.ascontiguousarray(base).tobytes()


class TestDecodeArray:
    def test_round_trip_is_bitwise_including_special_values(self):
        rows = encode_rows(
            np.array([[np.nan, -0.0, 5e-324, np.inf, -1.5e308]])
        )
        decoded = decode_array(array_header(rows), rows.tobytes())
        assert decoded.tobytes() == rows.tobytes()

    def test_result_is_read_only_view(self):
        rows = encode_rows(np.ones((2, 3)))
        decoded = decode_array(array_header(rows), rows.tobytes())
        assert not decoded.flags["WRITEABLE"]

    def test_float32_payload_rejected_not_reinterpreted(self):
        wrong = np.ones((1, 4), dtype=np.float32)
        with pytest.raises(ProtocolError, match="dtype"):
            decode_array({"shape": [1, 4], "dtype": "<f4"}, wrong.tobytes())

    def test_undeclared_dtype_rejected(self):
        with pytest.raises(ProtocolError, match="dtype"):
            decode_array({"shape": [1, 1]}, b"\x00" * 8)

    def test_byte_count_mismatch_rejected(self):
        # float32 bytes smuggled under a float64 declaration: the count gives
        # it away before any value is produced.
        with pytest.raises(ProtocolError, match="declares"):
            decode_array(
                {"shape": [1, 4], "dtype": WIRE_DTYPE},
                np.ones((1, 4), dtype=np.float32).tobytes(),
            )

    def test_invalid_shapes_rejected(self):
        for shape in ([-1, 4], [1, "4"], "nope", None):
            with pytest.raises(ProtocolError, match="shape"):
                decode_array({"shape": shape, "dtype": WIRE_DTYPE}, b"")

    def test_zero_row_array_decodes_to_empty(self):
        # The wire layer itself accepts an empty batch; the *worker* refuses
        # it at the predict op (exactly one row) — see the fleet tests.
        decoded = decode_array({"shape": [0, 7], "dtype": WIRE_DTYPE}, b"")
        assert decoded.shape == (0, 7)


class TestSyncFraming:
    def test_round_trip(self, pair):
        left, right = pair
        rows = encode_rows(np.arange(6.0).reshape(2, 3))
        write_frame(left, {"op": "predict", **array_header(rows)}, rows.tobytes())
        header, payload = read_frame(right)
        assert header["op"] == "predict"
        assert decode_array(header, payload).tobytes() == rows.tobytes()

    def test_clean_eof_between_frames_is_none(self, pair):
        left, right = pair
        left.close()
        assert read_frame(right) is None

    def test_truncated_mid_prefix(self, pair):
        left, right = pair
        with pytest.raises(TruncatedFrame) as info:
            read_after(left, right, frame_bytes({"op": "ping"})[:3])
        assert info.value.part == "prefix"
        assert info.value.received == 3

    def test_truncated_mid_header(self, pair):
        left, right = pair
        data = frame_bytes({"op": "ping", "pad": "x" * 64})
        with pytest.raises(TruncatedFrame) as info:
            read_after(left, right, data[: _PREFIX.size + 10])
        assert info.value.part == "header"

    def test_truncated_mid_payload(self, pair):
        left, right = pair
        rows = encode_rows(np.ones((1, 16)))
        data = frame_bytes(array_header(rows), rows.tobytes())
        with pytest.raises(TruncatedFrame) as info:
            read_after(left, right, data[:-40])
        assert info.value.part == "payload"
        assert info.value.expected == rows.nbytes

    def test_oversized_header_rejected_before_allocation(self, pair):
        left, right = pair
        declared = MAX_HEADER_BYTES + 1
        # Only the 8-byte prefix is sent: a reader that tried to allocate or
        # read the declared header would block forever instead of raising.
        left.sendall(_PREFIX.pack(declared, 0))
        with pytest.raises(FrameTooLarge) as info:
            read_frame(right)
        assert info.value.part == "header"
        assert info.value.declared == declared

    def test_oversized_payload_rejected_before_allocation(self, pair):
        left, right = pair
        left.sendall(_PREFIX.pack(2, 2**31))
        with pytest.raises(FrameTooLarge) as info:
            read_frame(right)
        assert info.value.part == "payload"
        assert info.value.limit == DEFAULT_MAX_PAYLOAD_BYTES

    def test_custom_payload_limit(self, pair):
        left, right = pair
        rows = encode_rows(np.ones((1, 64)))
        data = frame_bytes(array_header(rows), rows.tobytes())
        with pytest.raises(FrameTooLarge):
            read_after(left, right, data, max_payload=64)

    def test_non_json_header_rejected(self, pair):
        left, right = pair
        left.sendall(_PREFIX.pack(4, 0) + b"\xff\xfe\x00\x01")
        with pytest.raises(ProtocolError, match="UTF-8 JSON"):
            read_frame(right)

    def test_non_object_header_rejected(self, pair):
        left, right = pair
        raw = json.dumps([1, 2, 3]).encode()
        left.sendall(_PREFIX.pack(len(raw), 0) + raw)
        with pytest.raises(ProtocolError, match="JSON object"):
            read_frame(right)

    def test_empty_payload_frame(self, pair):
        left, right = pair
        write_frame(left, {"op": "ping"})
        header, payload = read_frame(right)
        assert header == {"op": "ping"} and payload == b""

    def test_errors_share_the_wireerror_base(self):
        assert issubclass(TruncatedFrame, WireError)
        assert issubclass(FrameTooLarge, WireError)
        assert issubclass(ProtocolError, WireError)


def read_async(data: bytes, **kwargs):
    """Feed ``data`` + EOF to a fresh StreamReader and read one frame."""

    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame_async(reader, **kwargs)

    return asyncio.run(run())


class TestAsyncFraming:
    """The asyncio reader enforces the identical contract."""

    def test_round_trip(self):
        rows = encode_rows(np.arange(4.0))
        header, payload = read_async(
            frame_bytes({"op": "predict", **array_header(rows)}, rows.tobytes())
        )
        assert decode_array(header, payload).tobytes() == rows.tobytes()

    def test_clean_eof_is_none(self):
        assert read_async(b"") is None

    def test_truncated_mid_prefix(self):
        with pytest.raises(TruncatedFrame) as info:
            read_async(frame_bytes({"op": "ping"})[:5])
        assert info.value.part == "prefix"

    def test_truncated_mid_header(self):
        with pytest.raises(TruncatedFrame) as info:
            read_async(frame_bytes({"op": "ping"})[: _PREFIX.size + 2])
        assert info.value.part == "header"

    def test_truncated_mid_payload(self):
        rows = encode_rows(np.ones((1, 8)))
        data = frame_bytes(array_header(rows), rows.tobytes())
        with pytest.raises(TruncatedFrame) as info:
            read_async(data[:-8])
        assert info.value.part == "payload"

    def test_oversized_payload_rejected(self):
        with pytest.raises(FrameTooLarge):
            read_async(_PREFIX.pack(2, 2**31) + b"{}")

    def test_custom_payload_limit(self):
        rows = encode_rows(np.ones((1, 64)))
        with pytest.raises(FrameTooLarge):
            read_async(
                frame_bytes(array_header(rows), rows.tobytes()), max_payload=64
            )
