"""Tests for the multi-tenant serving gateway.

The load-bearing properties:

* **routing determinism** — a stream key maps to the same shard in every
  process (SHA-256, not the salted built-in ``hash``), pinned by literal
  values and by a fresh subprocess;
* **cache transparency** — a cache hit is bitwise the response a cold query
  would produce, and a model-version bump makes every cached answer
  unreachable;
* **load shedding** — a shed query surfaces a typed :class:`Overloaded`
  error and never reaches a service, a batcher, or any monitor window.
"""

from __future__ import annotations

import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.monitor import TrafficMonitor
from repro.serve import Overloaded, ServingGateway, ShardRouter, stable_stream_digest


class LinearStub:
    """Deterministic, instantly-"trained" learner for gateway plumbing tests."""

    def __init__(self, n_features: int = 4, offset: float = 0.0) -> None:
        self.n_features = n_features
        self.offset = offset

    def predict(self, covariates: np.ndarray):
        class Estimate:
            pass

        estimate = Estimate()
        estimate.y0_hat = covariates.sum(axis=1) + self.offset
        estimate.y1_hat = covariates.sum(axis=1) * 2.0 + self.offset
        estimate.ite_hat = estimate.y1_hat - estimate.y0_hat
        return estimate


class BlockingStub(LinearStub):
    """A learner whose predict blocks until released (admission tests)."""

    def __init__(self, n_features: int = 4) -> None:
        super().__init__(n_features)
        self.release = threading.Event()

    def predict(self, covariates: np.ndarray):
        assert self.release.wait(30.0), "test forgot to release the blocking stub"
        return super().predict(covariates)


def stub_gateway(**kwargs) -> ServingGateway:
    kwargs.setdefault("loader", lambda stream: (LinearStub(), 0))
    kwargs.setdefault("n_shards", 4)
    kwargs.setdefault("max_batch", 8)
    return ServingGateway(**kwargs)


class TestRouting:
    def test_digest_is_sha256_based_and_pinned(self):
        """Literal pins: these values must hold in every process forever —
        they are what makes routing stable across restarts."""
        assert stable_stream_digest("news") == 1872266995202357583
        assert stable_stream_digest("stream-00") == 16303876236335235405
        assert ShardRouter(4).shard_for("news") == 3
        assert ShardRouter(4).shard_for("stream-00") == 1
        assert ShardRouter(7).shard_for("news") == 4

    def test_same_key_same_shard_across_instances(self):
        for key in ("news", "blog", "subsidiary-east"):
            assert ShardRouter(5).shard_for(key) == ShardRouter(5).shard_for(key)

    def test_same_key_same_shard_across_process_restarts(self):
        """A fresh interpreter (fresh hash salt) must route identically."""
        keys = ["news", "blog", "stream-00", "stream-01", "subsidiary-east"]
        script = (
            "from repro.serve import ShardRouter\n"
            f"print([ShardRouter(4).shard_for(k) for k in {keys!r}])\n"
        )
        src = str(Path(__file__).resolve().parents[2] / "src")
        output = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": src, "PYTHONHASHSEED": "random"},
        )
        child = eval(output.stdout.strip())  # a list literal of ints
        assert child == [ShardRouter(4).shard_for(key) for key in keys]

    def test_gateway_routes_through_the_router(self):
        with stub_gateway() as gateway:
            for key in ("news", "blog"):
                assert gateway.shard_for(key) == ShardRouter(4).shard_for(key)

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError, match="n_shards"):
            ShardRouter(0)


class TestLazySpinUp:
    def test_services_spin_up_on_first_query_only(self):
        loads: list = []

        def loader(stream):
            loads.append(stream)
            return LinearStub(), 0

        with ServingGateway(loader=loader, n_shards=2, max_batch=4) as gateway:
            assert gateway.streams() == [] and loads == []
            gateway.predict_one("a", np.arange(4.0))
            assert loads == ["a"] and gateway.streams() == ["a"]
            gateway.predict_one("a", np.arange(4.0) + 1)
            assert loads == ["a"]  # spin-up happens once
            gateway.predict_one("b", np.arange(4.0))
            assert sorted(loads) == ["a", "b"]

    def test_streams_land_on_their_routed_shard(self):
        with stub_gateway() as gateway:
            gateway.predict_one("news", np.arange(4.0))
            stats = gateway.stats()
            owning = [s.index for s in stats.shards if "news" in s.streams]
            assert owning == [gateway.shard_for("news")]

    def test_reload_hot_swaps_to_the_loader_head(self):
        versions = {"v": 0}

        def loader(stream):
            return LinearStub(offset=float(versions["v"])), versions["v"]

        with ServingGateway(loader=loader, n_shards=1, max_batch=4) as gateway:
            row = np.arange(4.0)
            assert gateway.predict_one("s", row).model_version == 0
            versions["v"] = 3
            assert gateway.reload("s") == 3
            response = gateway.predict_one("s", row)
            assert response.model_version == 3
            assert response.mu0 == row.sum() + 3.0

    def test_requires_exactly_one_of_registry_or_loader(self):
        with pytest.raises(ValueError, match="registry or loader"):
            ServingGateway()
        with pytest.raises(ValueError, match="registry or loader"):
            ServingGateway(registry=object(), loader=lambda s: (LinearStub(), 0))


class TestCacheTransparency:
    def test_hit_is_bitwise_identical_to_cold_response(self):
        row = np.array([0.1, 0.2, 0.3, 0.4])
        with stub_gateway(cache_capacity=16) as warm, stub_gateway(
            cache_capacity=0
        ) as cold:
            first = warm.predict_one("s", row)
            hit = warm.predict_one("s", row)
            cold_first = cold.predict_one("s", row)
            cold_again = cold.predict_one("s", row)
        assert hit == first == cold_first == cold_again
        assert warm.stats().cache_hits == 1
        # capacity 0 disables the cache entirely: both queries executed.
        assert cold.stats().cache_hits == 0

    def test_version_bump_invalidates(self):
        with stub_gateway(cache_capacity=16, n_shards=1) as gateway:
            row = np.arange(4.0)
            v0 = gateway.predict_one("s", row)
            assert gateway.predict_one("s", row) == v0  # served from cache
            gateway.service("s").swap_model(LinearStub(offset=10.0), model_version=1)
            swapped = gateway.predict_one("s", row)
            assert swapped.model_version == 1
            assert swapped.mu0 == v0.mu0 + 10.0  # recomputed, not the stale answer

    def test_untagged_model_is_never_cached(self):
        with ServingGateway(
            loader=lambda s: (LinearStub(), None), n_shards=1, max_batch=4
        ) as gateway:
            row = np.arange(4.0)
            gateway.predict_one("s", row)
            gateway.predict_one("s", row)
            shard = gateway.stats().shards[0]
            assert shard.cache.size == 0
            assert shard.cache.hits == 0
            assert shard.service.queries == 2  # both executed

    def test_ttl_expires_entries(self):
        clock = {"now": 0.0}
        with stub_gateway(
            n_shards=1, cache_capacity=16, cache_ttl_s=5.0, clock=lambda: clock["now"]
        ) as gateway:
            row = np.arange(4.0)
            first = gateway.predict_one("s", row)
            clock["now"] = 4.0
            assert gateway.predict_one("s", row) == first
            assert gateway.stats().cache_hits == 1
            clock["now"] = 10.0  # past the entry's deadline
            expired = gateway.predict_one("s", row)
            assert expired == first  # recomputed, bitwise equal regardless
            stats = gateway.stats().shards[0]
            assert stats.cache.expirations == 1
            assert stats.service.queries == 2  # cold, hit, recompute

    def test_distinct_rows_and_streams_do_not_collide(self):
        with stub_gateway(cache_capacity=64, n_shards=1) as gateway:
            row_a, row_b = np.arange(4.0), np.arange(4.0) + 1.0
            assert gateway.predict_one("x", row_a) != gateway.predict_one("x", row_b)
            # Same covariates under another stream key must not share entries
            # (another stream may serve another model version lineage).
            gateway.predict_one("y", row_a)
            assert gateway.stats().cache_hits == 0


class TestLoadShedding:
    def test_overloaded_is_typed_and_carries_context(self):
        stub = BlockingStub()
        with ServingGateway(
            loader=lambda s: (stub, 0),
            n_shards=1,
            max_batch=1,
            max_pending_per_shard=2,
            cache_capacity=0,
        ) as gateway:
            rows = np.eye(4)
            pendings = [gateway.submit("s", rows[i]) for i in range(2)]
            with pytest.raises(Overloaded) as excinfo:
                gateway.submit("s", rows[2])
            assert excinfo.value.stream == "s"
            assert excinfo.value.shard_index == 0
            assert excinfo.value.capacity == 2
            assert excinfo.value.retry_after_s is None
            stub.release.set()
            for pending in pendings:
                pending.result(timeout=30.0)
            # Capacity drains once responses are delivered.
            assert gateway.predict_one("s", rows[3], timeout=30.0) is not None
            stats = gateway.stats()
            assert stats.shed == 1
            assert stats.answered == 3

    def test_retry_after_hint_defaults_to_unknown(self):
        """Every shed type exposes ``retry_after_s`` so load harnesses read
        one field instead of special-casing error types; queue pressure has
        no honest ETA, so the gateway sheds with ``None``."""
        error = Overloaded("s", 0, 4, 4)
        assert error.retry_after_s is None
        hinted = Overloaded("s", 0, 4, 4, retry_after_s=0.25)
        assert hinted.retry_after_s == 0.25

    def test_shed_queries_never_reach_any_monitor_window(self):
        """The PR-4 observer contract extends through the gateway: a query
        shed by admission control must not enter any drift window."""
        stub = BlockingStub()
        reference = np.zeros((4, 4))
        with ServingGateway(
            loader=lambda s: (stub, 0),
            n_shards=1,
            max_batch=1,
            max_pending_per_shard=2,
            cache_capacity=0,
        ) as gateway:
            monitor = TrafficMonitor(reference, window_capacity=8).attach(
                gateway.service("s")
            )
            answered_rows = np.array([[1.0, 0, 0, 0], [0, 2.0, 0, 0]])
            shed_row = np.array([0, 0, 3.0, 0])
            pendings = [gateway.submit("s", row) for row in answered_rows]
            with pytest.raises(Overloaded):
                gateway.submit("s", shed_row)
            stub.release.set()
            for pending in pendings:
                pending.result(timeout=30.0)
            window = monitor.window_values()
        assert len(window) == 2
        np.testing.assert_array_equal(np.sort(window, axis=0), np.sort(answered_rows, axis=0))
        assert not any(np.array_equal(row, shed_row) for row in window)

    def test_occupancy_reflects_in_flight_queries(self):
        stub = BlockingStub()
        with ServingGateway(
            loader=lambda s: (stub, 0),
            n_shards=1,
            max_batch=1,
            max_pending_per_shard=4,
            cache_capacity=0,
        ) as gateway:
            pendings = [gateway.submit("s", np.eye(4)[i]) for i in range(2)]
            busy = gateway.stats().shards[0]
            assert busy.in_flight == 2
            assert busy.occupancy == pytest.approx(0.5)
            stub.release.set()
            for pending in pendings:
                pending.result(timeout=30.0)
            drained = gateway.stats().shards[0]
            assert drained.in_flight == 0 and drained.occupancy == 0.0

    def test_unbounded_gateway_never_sheds(self):
        with stub_gateway(max_pending_per_shard=None, cache_capacity=0) as gateway:
            for index in range(32):
                gateway.predict_one("s", np.full(4, float(index)))
            assert gateway.stats().shed == 0

    def test_invalid_admission_bound(self):
        with pytest.raises(ValueError, match="max_pending_per_shard"):
            stub_gateway(max_pending_per_shard=0)


class TestLifecycle:
    def test_submit_and_spin_up_rejected_after_close(self):
        gateway = stub_gateway()
        gateway.predict_one("s", np.arange(4.0))
        gateway.close()
        with pytest.raises(RuntimeError, match="closed ServingGateway"):
            gateway.submit("s", np.arange(4.0))
        with pytest.raises(RuntimeError, match="closed ServingGateway"):
            gateway.service("brand-new")
        gateway.close()  # idempotent

    def test_malformed_query_is_rejected_without_leaking_in_flight(self):
        with stub_gateway(n_shards=1, max_pending_per_shard=2) as gateway:
            with pytest.raises(ValueError, match="1-D covariate vector"):
                gateway.submit("s", np.ones((2, 4)))
            with pytest.raises(ValueError, match="model expects"):
                gateway.submit("s", np.ones(7))
            stats = gateway.stats().shards[gateway.shard_for("s")]
            assert stats.in_flight == 0

    def test_direct_predict_counts_rows_toward_throughput(self):
        with stub_gateway() as gateway:
            gateway.predict("s", np.ones((5, 4)))
            assert gateway.stats().answered == 5
