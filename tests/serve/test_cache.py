"""Unit tests for the TTL+LRU response cache."""

from __future__ import annotations

import threading

import pytest

from repro.serve import TTLLRUCache


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestTTLLRUCache:
    def test_get_put_roundtrip_and_counters(self):
        cache = TTLLRUCache(capacity=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert stats.hit_rate == pytest.approx(0.5)

    def test_lru_eviction_order_follows_use_not_insertion(self):
        cache = TTLLRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a": "b" is now least recently used
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats().evictions == 1

    def test_ttl_expiry_is_lazy_and_counted(self):
        clock = FakeClock()
        cache = TTLLRUCache(capacity=4, ttl_s=10.0, clock=clock)
        cache.put("a", 1)
        clock.now = 9.999
        assert cache.get("a") == 1
        clock.now = 10.0  # the deadline itself counts as expired
        assert cache.get("a") is None
        stats = cache.stats()
        assert stats.expirations == 1 and stats.size == 0

    def test_refresh_put_resets_ttl(self):
        clock = FakeClock()
        cache = TTLLRUCache(capacity=4, ttl_s=10.0, clock=clock)
        cache.put("a", 1)
        clock.now = 8.0
        cache.put("a", 2)
        clock.now = 15.0  # past the first deadline, inside the second
        assert cache.get("a") == 2

    def test_capacity_zero_disables(self):
        cache = TTLLRUCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_clear_drops_entries_but_not_counters(self):
        cache = TTLLRUCache(capacity=4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert cache.get("a") is None
        stats = cache.stats()
        assert stats.size == 0 and stats.hits == 1 and stats.misses == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError, match="capacity"):
            TTLLRUCache(capacity=-1)
        with pytest.raises(ValueError, match="ttl_s"):
            TTLLRUCache(capacity=4, ttl_s=0.0)

    def test_concurrent_puts_and_gets_never_corrupt(self):
        cache = TTLLRUCache(capacity=64)
        errors: list = []
        barrier = threading.Barrier(8)

        def worker(worker_index: int) -> None:
            barrier.wait()
            try:
                for round_index in range(300):
                    key = (worker_index * 7 + round_index) % 100
                    cache.put(key, key * 2)
                    value = cache.get(key)
                    if value is not None and value != key * 2:
                        errors.append((key, value))
            except BaseException as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        stats = cache.stats()
        assert stats.size <= 64
        assert stats.hits + stats.misses == 8 * 300
