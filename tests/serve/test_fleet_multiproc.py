"""Integration tests for the out-of-process shard fleet.

Two layers are pinned here:

* :class:`WorkerServer` — exercised in-process (served from a thread, spoken
  to over a raw loopback socket) so the worker's protocol edge cases are
  testable without forking: one-row predicts, typed error frames, pipelined
  out-of-order completion, and survival of malformed/oversized/truncated
  frames (the poisoned connection dies, the worker lives).
* :class:`MultiprocGateway` — real spawned worker processes behind the
  asyncio front door: bitwise identity across the process boundary, the
  response cache, per-tenant rate limits and quotas (typed shedding), hot
  swaps through the ``AdaptationController``-compatible handle, and the
  kill/restart lifecycle.
"""

from __future__ import annotations

import copy
import socket
import struct
import threading

import numpy as np
import pytest

from repro.core import CERL, ContinualConfig, ModelConfig
from repro.data import DomainStream, SyntheticConfig, SyntheticDomainGenerator
from repro.experiments.multiproc import _spanning_names
from repro.serve import ModelRegistry, MultiprocGateway, TenantPolicy
from repro.serve.fleet import (
    QuotaExceeded,
    RateLimited,
    RemoteError,
    WorkerServer,
    WorkerUnavailable,
)
from repro.serve.fleet.wire import WIRE_DTYPE, read_frame, write_frame

_PREFIX = struct.Struct(">II")


class FleetSetup:
    """Shared registry + bitwise references for every test in this module."""

    def __init__(self, root) -> None:
        config = SyntheticConfig(
            n_confounders=6,
            n_instruments=3,
            n_irrelevant=4,
            n_adjustment=6,
            n_units=160,
            domain_mean_shift=1.5,
            outcome_scale=5.0,
        )
        model_config = ModelConfig(
            representation_dim=8,
            encoder_hidden=(16,),
            outcome_hidden=(8,),
            epochs=4,
            batch_size=64,
            sinkhorn_iterations=10,
            seed=3,
        )
        continual = ContinualConfig(memory_budget=40, rehearsal_batch_size=32)
        generator = SyntheticDomainGenerator(config, seed=7)
        self.stream = DomainStream(
            [generator.generate_domain(0), generator.generate_domain(1)], seed=7
        )
        learner = CERL(self.stream.n_features, model_config, continual)
        learner.observe(self.stream.train_data(0))
        self.learner = learner
        # The adapted lineage for hot-swap tests: one more observed domain.
        self.learner_v1 = copy.deepcopy(learner)
        self.learner_v1.observe(self.stream.train_data(1))

        self.root = root
        self.registry = ModelRegistry(root)
        self.names = _spanning_names("fleet", 4, 2)
        for name in self.names:
            self.registry.save(name, 0, learner)

        self.bank = self.stream[0].test.covariates
        self.reference = learner.predict(self.bank)
        self.reference_v1 = self.learner_v1.predict(self.bank)

    def matches(self, response, index: int, reference=None) -> bool:
        reference = reference if reference is not None else self.reference
        return (
            response.mu0 == reference.y0_hat[index]
            and response.mu1 == reference.y1_hat[index]
            and response.ite == reference.ite_hat[index]
        )


@pytest.fixture(scope="module")
def setup(tmp_path_factory):
    return FleetSetup(str(tmp_path_factory.mktemp("fleet-registry")))


# --------------------------------------------------------------------------- #
# worker protocol (in-process server, raw socket client)
# --------------------------------------------------------------------------- #
@pytest.fixture
def worker(setup):
    server = WorkerServer(setup.root, (setup.names[0],), max_batch=len(setup.bank))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    thread.join(timeout=5.0)


def connect(server: WorkerServer) -> socket.socket:
    sock = socket.create_connection(("127.0.0.1", server.port), timeout=10.0)
    sock.settimeout(10.0)
    return sock


def predict_header(setup, request_id: int, rows: np.ndarray, stream=None) -> dict:
    return {
        "op": "predict",
        "id": request_id,
        "stream": stream or setup.names[0],
        "shape": list(rows.shape),
        "dtype": WIRE_DTYPE,
    }


def roundtrip(sock, header: dict, payload: bytes = b""):
    write_frame(sock, header, payload)
    return read_frame(sock)


class TestWorkerProtocol:
    def test_predict_is_bitwise_identical_to_in_process(self, setup, worker):
        with connect(worker) as sock:
            for index in (0, 7, len(setup.bank) - 1):
                rows = setup.bank[index : index + 1]
                header, payload = roundtrip(
                    sock, predict_header(setup, index, rows), rows.tobytes()
                )
                assert header["op"] == "result" and header["id"] == index
                assert header["model_version"] == 0
                mu0, mu1, ite = np.frombuffer(payload, dtype=np.float64)
                assert mu0 == setup.reference.y0_hat[index]
                assert mu1 == setup.reference.y1_hat[index]
                assert ite == setup.reference.ite_hat[index]

    def test_pipelined_requests_complete_and_pair_by_id(self, setup, worker):
        indices = [3, 11, 5, 2, 19, 8]
        with connect(worker) as sock:
            for request_id, index in enumerate(indices):
                rows = setup.bank[index : index + 1]
                write_frame(
                    sock, predict_header(setup, request_id, rows), rows.tobytes()
                )
            answers = {}
            for _ in indices:
                header, payload = read_frame(sock)
                assert header["op"] == "result"
                answers[header["id"]] = np.frombuffer(payload, dtype=np.float64)
        assert sorted(answers) == list(range(len(indices)))
        for request_id, index in enumerate(indices):
            assert answers[request_id][2] == setup.reference.ite_hat[index]

    def test_zero_row_predict_answers_typed_error(self, setup, worker):
        with connect(worker) as sock:
            rows = setup.bank[:0]
            header, _ = roundtrip(
                sock, predict_header(setup, 1, rows), rows.tobytes()
            )
            assert header["op"] == "error" and header["id"] == 1
            assert header["error"] == "ValueError"
            assert "exactly one query row" in header["message"]
            # The connection survived the refused request.
            assert roundtrip(sock, {"op": "ping", "id": 2})[0]["op"] == "pong"

    def test_multi_row_predict_answers_typed_error(self, setup, worker):
        with connect(worker) as sock:
            rows = setup.bank[:2]
            header, _ = roundtrip(sock, predict_header(setup, 1, rows), rows.tobytes())
            assert header["op"] == "error" and header["error"] == "ValueError"

    def test_unknown_stream_answers_typed_error(self, setup, worker):
        with connect(worker) as sock:
            rows = setup.bank[:1]
            header, _ = roundtrip(
                sock,
                predict_header(setup, 1, rows, stream="nobody"),
                rows.tobytes(),
            )
            assert header["op"] == "error" and header["error"] == "KeyError"

    def test_unknown_op_answers_typed_error(self, setup, worker):
        with connect(worker) as sock:
            header, _ = roundtrip(sock, {"op": "frobnicate", "id": 9})
            assert header["op"] == "error" and header["error"] == "ValueError"

    def test_float32_payload_poisons_only_its_connection(self, setup, worker):
        """A peer that skipped ``encode_rows`` is cut off (ProtocolError is
        connection-fatal), and the worker keeps serving new connections —
        the rejection is symmetric with the client side's ``decode_array``."""
        with connect(worker) as sock:
            rows = setup.bank[:1].astype(np.float32)
            header = predict_header(setup, 1, rows)
            header["dtype"] = "<f4"
            write_frame(sock, header, rows.tobytes())
            assert read_frame(sock) is None  # worker closed the connection
        with connect(worker) as sock:
            assert roundtrip(sock, {"op": "ping", "id": 1})[0]["op"] == "pong"

    def test_oversized_frame_rejected_before_allocation(self, setup, worker):
        with connect(worker) as sock:
            # Declare a 2 GiB payload but send none: a worker that tried to
            # allocate or read it would hang; rejecting up front closes the
            # connection immediately.
            sock.sendall(_PREFIX.pack(2, 2**31) + b"{}")
            assert read_frame(sock) is None
        with connect(worker) as sock:
            assert roundtrip(sock, {"op": "ping", "id": 1})[0]["op"] == "pong"

    def test_truncated_frame_poisons_only_its_connection(self, setup, worker):
        sock = connect(worker)
        rows = setup.bank[:1]
        raw = rows.tobytes()
        sock.sendall(_PREFIX.pack(30, len(raw))+ b'{"op":"predict"')  # partial header
        sock.close()
        with connect(worker) as fresh:
            header, _ = roundtrip(fresh, {"op": "ping", "id": 1})
            assert header["op"] == "pong"
            assert setup.names[0] in header["streams"]

    def test_stats_and_reload_ops(self, setup, worker):
        with connect(worker) as sock:
            rows = setup.bank[:1]
            roundtrip(sock, predict_header(setup, 1, rows), rows.tobytes())
            header, _ = roundtrip(sock, {"op": "stats", "id": 2})
            assert header["op"] == "stats" and header["queries"] >= 1
            # Reload to the (only) registry version succeeds and reports it.
            header, _ = roundtrip(
                sock, {"op": "reload", "id": 3, "stream": setup.names[0]}
            )
            assert header["op"] == "reloaded" and header["model_version"] == 0


class TestWorkerChaos:
    """The SLO harness's straggler fault rides on the worker's chaos op."""

    @pytest.fixture
    def slow_worker(self, setup):
        delays = []
        server = WorkerServer(
            setup.root,
            (setup.names[0],),
            max_batch=len(setup.bank),
            delay_hook=delays.append,
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server, delays
        server.shutdown()
        thread.join(timeout=5.0)

    def test_chaos_delay_is_applied_through_the_injected_hook(self, setup, slow_worker):
        server, delays = slow_worker
        rows = setup.bank[:1]
        with connect(server) as sock:
            header, _ = roundtrip(sock, {"op": "chaos", "id": 1, "delay_ms": 40.0})
            assert header["op"] == "chaos_set" and header["delay_ms"] == 40.0
            header, payload = roundtrip(
                sock, predict_header(setup, 2, rows), rows.tobytes()
            )
            assert header["op"] == "result"
            assert delays == [pytest.approx(0.04)]
            # Bitwise identity survives the straggler window: only latency
            # degrades, never the answer.
            mu0 = np.frombuffer(payload, dtype=np.float64)[0]
            assert mu0 == setup.reference.y0_hat[0]
            # Clearing the delay stops the hook firing.
            roundtrip(sock, {"op": "chaos", "id": 3, "delay_ms": 0.0})
            roundtrip(sock, predict_header(setup, 4, rows), rows.tobytes())
            assert len(delays) == 1

    def test_negative_delay_answers_typed_error(self, setup, slow_worker):
        server, _ = slow_worker
        with connect(server) as sock:
            header, _ = roundtrip(sock, {"op": "chaos", "id": 1, "delay_ms": -5.0})
            assert header["op"] == "error" and header["error"] == "ValueError"


# --------------------------------------------------------------------------- #
# multiprocess gateway (spawned workers)
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def gateway(setup):
    with MultiprocGateway(
        setup.root,
        setup.names,
        n_workers=2,
        max_batch=len(setup.bank),
        cache_capacity=64,
        tenant_policies={
            setup.names[2]: TenantPolicy(quota=3),
            setup.names[3]: TenantPolicy(rate_qps=0.001, burst=1),
        },
    ) as gw:
        yield gw


class TestMultiprocGateway:
    def test_streams_span_both_workers(self, setup, gateway):
        assert {gateway.worker_for(name) for name in setup.names} == {0, 1}

    def test_bitwise_identity_across_process_boundary(self, setup, gateway):
        for name in setup.names[:2]:
            indices = np.random.default_rng(41).integers(0, len(setup.bank), size=12)
            pendings = [
                (int(i), gateway.submit(name, setup.bank[i])) for i in indices
            ]
            for index, pending in pendings:
                response = pending.result(timeout=60.0)
                assert response.model_version == 0
                assert setup.matches(response, index)

    def test_repeated_row_hits_the_response_cache(self, setup, gateway):
        name = setup.names[0]
        before = gateway.stats(include_worker_stats=False).cache_hits
        for _ in range(3):
            response = gateway.predict_one(name, setup.bank[5], timeout=60.0)
            assert setup.matches(response, 5)
        after = gateway.stats(include_worker_stats=False).cache_hits
        assert after >= before + 2

    def test_quota_sheds_typed_and_cache_hits_stay_free(self, setup, gateway):
        name = setup.names[2]
        for index in range(3):
            assert setup.matches(
                gateway.predict_one(name, setup.bank[index], timeout=60.0), index
            )
        with pytest.raises(QuotaExceeded) as info:
            gateway.predict_one(name, setup.bank[3], timeout=60.0)
        assert info.value.stream == name
        assert info.value.quota == 3 and info.value.admitted == 3
        # A cached repeat consumes no worker capacity: still served.
        assert setup.matches(gateway.predict_one(name, setup.bank[0], timeout=60.0), 0)
        assert gateway.stats(include_worker_stats=False).shed >= 1

    def test_rate_limit_sheds_typed_with_retry_hint(self, setup, gateway):
        name = setup.names[3]
        assert setup.matches(gateway.predict_one(name, setup.bank[9], timeout=60.0), 9)
        with pytest.raises(RateLimited) as info:
            gateway.predict_one(name, setup.bank[10], timeout=60.0)
        assert info.value.stream == name
        assert info.value.retry_after_s > 0.0
        # The cached first row is exempt from the bucket.
        assert setup.matches(gateway.predict_one(name, setup.bank[9], timeout=60.0), 9)

    def test_set_worker_delay_round_trips_and_validates(self, setup, gateway):
        with pytest.raises(ValueError, match="delay_ms"):
            gateway.set_worker_delay(0, -1.0)
        ack = gateway.set_worker_delay(0, 5.0)
        assert ack["delay_ms"] == 5.0
        try:
            name = setup.names[0]
            index = 11
            response = gateway.predict_one(name, setup.bank[index], timeout=60.0)
            assert setup.matches(response, index)  # slow, never wrong
        finally:
            assert gateway.set_worker_delay(0, 0.0)["delay_ms"] == 0.0

    def test_unrouted_stream_fails_with_remote_keyerror(self, setup, gateway):
        # Digest routing maps any name to *some* worker; the worker itself
        # refuses streams it does not own, and the refusal comes back typed.
        with pytest.raises(RemoteError) as info:
            gateway.predict_one("never-registered", setup.bank[0], timeout=60.0)
        assert info.value.kind == "KeyError"

    def test_stats_include_worker_micro_batcher_totals(self, setup, gateway):
        stats = gateway.stats()
        assert len(stats.shards) == 2
        assert stats.answered > 0
        assert sum(shard.service.queries for shard in stats.shards) > 0

    def test_hot_swap_serves_new_version_bitwise(self, setup, gateway):
        """The AdaptationController-compatible path: save v1, reload through
        the duck-typed handle, and the post-swap wave must match the adapted
        learner bit for bit while co-tenant streams stay on v0."""
        name = setup.names[1]
        setup.registry.save(name, 1, setup.learner_v1)
        handle = gateway.service(name)
        assert handle.reload(setup.registry, name) == 1
        for index in (2, 13):
            response = gateway.predict_one(name, setup.bank[index], timeout=60.0)
            assert response.model_version == 1
            assert setup.matches(response, index, setup.reference_v1)
        # Co-tenant on the same worker pool still serves version 0.
        other = setup.names[0]
        response = gateway.predict_one(other, setup.bank[2], timeout=60.0)
        assert response.model_version == 0
        assert setup.matches(response, 2)


# --------------------------------------------------------------------------- #
# lifecycle: kill / restart / close (own gateway — it mutates the fleet)
# --------------------------------------------------------------------------- #
@pytest.mark.slow
class TestFleetLifecycle:
    def test_kill_restart_and_close(self, setup):
        names = setup.names[:2]

        def check(response, index: int) -> bool:
            # The shared registry may already hold v1 for a stream (the
            # hot-swap test advances it); match against the reported version.
            reference = (
                setup.reference_v1 if response.model_version == 1 else setup.reference
            )
            return setup.matches(response, index, reference)
        with MultiprocGateway(
            setup.root,
            names,
            n_workers=2,
            max_batch=len(setup.bank),
            cache_capacity=0,
        ) as gateway:
            victim, survivor = names
            if gateway.worker_for(victim) == gateway.worker_for(survivor):
                pytest.skip("streams collapsed onto one worker for this digest")
            victim_worker = gateway.worker_for(victim)
            assert check(gateway.predict_one(victim, setup.bank[0], timeout=60.0), 0)

            gateway.kill_worker(victim_worker)
            with pytest.raises(WorkerUnavailable) as info:
                gateway.predict_one(victim, setup.bank[1], timeout=60.0)
            assert info.value.worker_index == victim_worker
            # The surviving tenant never noticed.
            assert check(gateway.predict_one(survivor, setup.bank[3], timeout=60.0), 3)

            gateway.restart_worker(victim_worker)
            response = gateway.predict_one(victim, setup.bank[4], timeout=60.0)
            assert check(response, 4)

        with pytest.raises(RuntimeError, match="closed"):
            gateway.submit(victim, setup.bank[0])
