"""End-to-end integration tests exercising the public API as a user would."""

from __future__ import annotations

import numpy as np

import repro
from repro import (
    CERL,
    BlogCatalogBenchmark,
    ContinualConfig,
    DomainStream,
    ModelConfig,
    NewsBenchmark,
    make_estimator,
)
from repro.experiments import SMOKE, run_two_domain_comparison


class TestPublicAPI:
    def test_version_and_exports(self):
        assert repro.__version__
        for name in repro.__all__:
            assert hasattr(repro, name)

    def test_news_quickstart_flow(self):
        """The README quickstart: News benchmark -> CERL over two domains -> metrics."""
        benchmark = NewsBenchmark(scale=0.03, seed=0)
        first, second = benchmark.generate_domain_pair("substantial")
        stream = DomainStream([first, second], seed=0)

        model_config = ModelConfig(
            representation_dim=16,
            encoder_hidden=(32,),
            outcome_hidden=(16,),
            epochs=5,
            batch_size=64,
            sinkhorn_iterations=10,
            seed=0,
        )
        cerl = CERL(stream.n_features, model_config, ContinualConfig(memory_budget=60))
        cerl.observe(stream.train_data(0), val_dataset=stream.val_data(0))
        cerl.observe(stream.train_data(1), val_dataset=stream.val_data(1))

        previous_test, new_test = stream.previous_and_new_test(1)
        for metrics in (cerl.evaluate(previous_test), cerl.evaluate(new_test)):
            assert np.isfinite(metrics["sqrt_pehe"])
            assert np.isfinite(metrics["ate_error"])
        assert cerl.memory_size <= 60

    def test_blogcatalog_strategy_comparison(self):
        """Strategies and CERL can be compared uniformly on BlogCatalog data."""
        benchmark = BlogCatalogBenchmark(scale=0.03, seed=1)
        first, second = benchmark.generate_domain_pair("moderate")
        results = run_two_domain_comparison(
            first,
            second,
            strategies=("CFR-B", "CERL"),
            model_config=SMOKE.model_config(seed=1),
            continual_config=SMOKE.continual_config(memory_budget=50),
            seed=1,
        )
        assert {r.strategy for r in results} == {"CFR-B", "CERL"}

    def test_make_estimator_five_domain_stream(self):
        """CERL handles a five-domain synthetic stream (Figure 4 protocol)."""
        from repro.data import SyntheticDomainGenerator

        generator = SyntheticDomainGenerator(SMOKE.synthetic_config(n_units=150), seed=2)
        stream = DomainStream(generator.generate_stream(5), seed=2)
        learner = make_estimator(
            "CERL",
            stream.n_features,
            SMOKE.model_config(seed=2),
            SMOKE.continual_config(memory_budget=50),
        )
        for index in range(5):
            learner.observe(stream.train_data(index), epochs=2)
        results = [learner.evaluate(test) for test in stream.test_sets_seen(4)]
        assert len(results) == 5
        assert all(np.isfinite(r["sqrt_pehe"]) for r in results)
