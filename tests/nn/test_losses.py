"""Tests for loss functions and regularisers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import (
    Parameter,
    Tensor,
    binary_cross_entropy,
    cosine_distance_loss,
    cosine_similarity,
    elastic_net_penalty,
    mae_loss,
    mse_loss,
)


class TestRegression:
    def test_mse_known_value(self):
        pred = Tensor(np.array([1.0, 2.0, 3.0]))
        target = Tensor(np.array([1.0, 0.0, 6.0]))
        assert mse_loss(pred, target).item() == pytest.approx((0 + 4 + 9) / 3)

    def test_mse_zero_at_perfect_prediction(self):
        values = Tensor(np.arange(5.0))
        assert mse_loss(values, values).item() == pytest.approx(0.0)

    def test_mae_known_value(self):
        pred = Tensor(np.array([1.0, -2.0]))
        target = Tensor(np.array([0.0, 2.0]))
        assert mae_loss(pred, target).item() == pytest.approx(2.5)

    def test_mse_gradient_direction(self):
        pred = Tensor(np.array([2.0]), requires_grad=True)
        mse_loss(pred, Tensor(np.array([0.0]))).backward()
        assert pred.grad[0] > 0  # moving prediction down reduces the loss


class TestBinaryCrossEntropy:
    def test_perfect_prediction_near_zero(self):
        pred = Tensor(np.array([0.999, 0.001]))
        target = Tensor(np.array([1.0, 0.0]))
        assert binary_cross_entropy(pred, target).item() < 0.01

    def test_worst_prediction_is_large(self):
        pred = Tensor(np.array([0.001, 0.999]))
        target = Tensor(np.array([1.0, 0.0]))
        assert binary_cross_entropy(pred, target).item() > 3.0

    def test_handles_exact_zero_and_one(self):
        pred = Tensor(np.array([0.0, 1.0]))
        target = Tensor(np.array([0.0, 1.0]))
        value = binary_cross_entropy(pred, target).item()
        assert np.isfinite(value)


class TestElasticNet:
    def test_combines_l1_and_l2(self):
        param = Parameter(np.array([1.0, -2.0]))
        value = elastic_net_penalty([param], l1_ratio=0.5).item()
        l2 = 1.0 + 4.0
        l1 = 1.0 + 2.0
        assert value == pytest.approx(0.5 * l2 + 0.5 * l1)

    def test_pure_lasso_and_ridge_limits(self):
        param = Parameter(np.array([3.0]))
        assert elastic_net_penalty([param], l1_ratio=1.0).item() == pytest.approx(3.0)
        assert elastic_net_penalty([param], l1_ratio=0.0).item() == pytest.approx(9.0)

    def test_zero_weights_give_zero_penalty(self):
        assert elastic_net_penalty([Parameter(np.zeros(10))]).item() == pytest.approx(0.0)

    def test_multiple_parameters_summed(self):
        a = Parameter(np.array([1.0]))
        b = Parameter(np.array([1.0]))
        single = elastic_net_penalty([a]).item()
        both = elastic_net_penalty([a, b]).item()
        assert both == pytest.approx(2 * single)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            elastic_net_penalty([], l1_ratio=0.5)
        with pytest.raises(ValueError):
            elastic_net_penalty([Parameter(np.ones(2))], l1_ratio=2.0)

    def test_gradient_flows(self):
        param = Parameter(np.array([1.0, -1.0]))
        elastic_net_penalty([param]).backward()
        assert param.grad is not None


class TestCosineLosses:
    def test_identical_vectors_have_zero_distance(self):
        a = Tensor(np.random.default_rng(0).normal(size=(5, 8)))
        assert cosine_distance_loss(a, a).item() == pytest.approx(0.0, abs=1e-6)

    def test_opposite_vectors_have_distance_two(self):
        a = Tensor(np.ones((3, 4)))
        b = Tensor(-np.ones((3, 4)))
        assert cosine_distance_loss(a, b).item() == pytest.approx(2.0)

    def test_orthogonal_vectors_have_distance_one(self):
        a = Tensor(np.array([[1.0, 0.0]]))
        b = Tensor(np.array([[0.0, 1.0]]))
        assert cosine_distance_loss(a, b).item() == pytest.approx(1.0)

    def test_similarity_scale_invariance(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(4, 6))
        b = rng.normal(size=(4, 6))
        sim = cosine_similarity(Tensor(a), Tensor(b)).numpy()
        sim_scaled = cosine_similarity(Tensor(a * 7.0), Tensor(b * 0.1)).numpy()
        np.testing.assert_allclose(sim, sim_scaled, atol=1e-6)

    def test_distance_equals_half_squared_euclidean_for_unit_vectors(self):
        """The identity the paper uses to justify Eq. 6: ||A-B||^2 = 2(1 - cos)."""
        rng = np.random.default_rng(2)
        a = rng.normal(size=(10, 5))
        b = rng.normal(size=(10, 5))
        a /= np.linalg.norm(a, axis=1, keepdims=True)
        b /= np.linalg.norm(b, axis=1, keepdims=True)
        cosine = cosine_distance_loss(Tensor(a), Tensor(b)).item()
        euclidean = float(np.mean(np.sum((a - b) ** 2, axis=1)))
        assert euclidean == pytest.approx(2.0 * cosine, rel=1e-9)

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 6), st.integers(2, 6)),
            elements=st.floats(-5, 5, allow_nan=False),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_distance_always_in_zero_two(self, value):
        other = np.roll(value, 1, axis=1) + 0.1
        distance = cosine_distance_loss(Tensor(value), Tensor(other)).item()
        assert -1e-6 <= distance <= 2.0 + 1e-6
