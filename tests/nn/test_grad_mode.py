"""Grad-mode gating: ``no_grad`` as context manager, decorator, and nested."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor, is_grad_enabled, no_grad


class TestContextManager:
    def test_disables_and_restores(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_nested_fresh_instances(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            # The inner exit must not prematurely re-enable gradients.
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_single_instance_is_reentrant(self):
        guard = no_grad()
        with guard:
            with guard:
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()


class TestDecorator:
    def test_factory_form(self):
        @no_grad()
        def probe():
            return is_grad_enabled()

        assert probe() is False
        assert is_grad_enabled()

    def test_bare_form(self):
        @no_grad
        def probe():
            return is_grad_enabled()

        assert probe() is False
        assert is_grad_enabled()

    def test_bare_form_preserves_metadata_and_arguments(self):
        @no_grad
        def scaled_sum(values, factor=2.0):
            """Docstring survives wrapping."""
            return float(np.sum(values) * factor)

        assert scaled_sum.__name__ == "scaled_sum"
        assert "Docstring" in scaled_sum.__doc__
        assert scaled_sum(np.ones(3), factor=3.0) == 9.0

    def test_bare_form_binds_instance_methods(self):
        class Model:
            def __init__(self):
                self.calls = 0

            @no_grad
            def predict(self, x):
                self.calls += 1
                return (is_grad_enabled(), x)

        model = Model()
        assert model.predict(5) == (False, 5)
        assert model.calls == 1
        assert is_grad_enabled()

    def test_decorated_function_is_reentrant(self):
        @no_grad
        def countdown(n):
            assert not is_grad_enabled()
            return n if n == 0 else countdown(n - 1)

        assert countdown(3) == 0
        assert is_grad_enabled()


class TestRequiresGradGating:
    def test_tensor_created_under_no_grad_never_requires_grad(self):
        with no_grad():
            t = Tensor([1.0, 2.0], requires_grad=True)
        assert not t.requires_grad

    def test_ops_under_no_grad_record_no_graph(self):
        a = Tensor([[1.0, 2.0]], requires_grad=True)
        b = Tensor([[3.0], [4.0]], requires_grad=True)
        with no_grad():
            out = (a @ b).relu()
        assert out._backward is None
        assert out._parents == ()
        assert not out.requires_grad

    def test_nested_gating_restores_graph_recording(self):
        a = Tensor([2.0], requires_grad=True)
        with no_grad():
            with no_grad():
                pass
            inner = a * 3.0
            assert inner._backward is None
        outer = a * 3.0
        assert outer.requires_grad
        assert outer._backward is not None
        outer.backward(np.ones(1))
        np.testing.assert_array_equal(a.grad, [3.0])
