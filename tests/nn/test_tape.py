"""Tape backend parity: traced kernels reproduce eager autograd bit for bit.

Every layer type the CERL stack uses is run through both execution paths —
the eager ``Tensor`` graph and a compiled :class:`~repro.nn.tape.Tape` — on
several replayed minibatches, and the loss values and every parameter
gradient are asserted ``np.array_equal`` (exact, no tolerance).  Dropout
modules share seeded generators so the test also pins that replays consume
the RNG stream in exactly the eager draw order.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.outcome import OutcomeHeads
from repro.core.representation import RepresentationNetwork
from repro.nn import (
    ELU,
    MLP,
    CosineNormLinear,
    Dropout,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    Tensor,
    elastic_net_penalty,
)
from repro.nn.tape import Tape, Trace, TraceError, activate_trace


def _batches(n_steps: int, shape: tuple, seed: int = 0) -> list:
    rng = np.random.default_rng(seed)
    return [rng.normal(size=shape) for _ in range(n_steps)]


def _run_parity(module_factory, batches, loss=lambda out: (out * out).sum()):
    """Train-step parity harness: same module twice, eager vs traced.

    The tape is compiled on the first batch (tracing is execution) and
    replayed on the rest; each step's total and per-parameter gradients must
    match the eager twin exactly.
    """
    eager_mod = module_factory()
    tape_mod = module_factory()
    eager_params = eager_mod.parameters()
    tape_params = tape_mod.parameters()
    for a, b in zip(eager_params, tape_params):
        assert np.array_equal(a.data, b.data), "factory must be deterministic"

    tape = None
    for x in batches:
        for param in eager_params:
            param.zero_grad()
        eager_total = loss(eager_mod.forward(Tensor(x)))
        eager_total.backward()

        feeds = {"x": x}
        if tape is None:
            trace = Trace(dict(feeds))
            with activate_trace(trace):
                total = loss(tape_mod.forward(trace.input_leaf("x")))
            tape = Tape(trace, total, [("total", total)])
        else:
            tape.run_forward(feeds)
        tape.run_backward()

        assert float(tape.total.item()) == float(eager_total.item())
        for eager_param, tape_param in zip(eager_params, tape_params):
            if eager_param.grad is None:
                assert tape_param.grad is None
            else:
                assert np.array_equal(eager_param.grad, tape_param.grad)
    return tape


class TestLayerParityMatrix:
    def test_linear(self):
        factory = lambda: Linear(5, 3, rng=np.random.default_rng(1))  # noqa: E731
        _run_parity(factory, _batches(4, (12, 5)))

    def test_cosine_norm_linear(self):
        factory = lambda: CosineNormLinear(5, 3, rng=np.random.default_rng(1))  # noqa: E731
        _run_parity(factory, _batches(4, (12, 5)))

    @pytest.mark.parametrize("activation", [ReLU, Tanh, Sigmoid])
    def test_simple_activations(self, activation):
        def factory():
            return Sequential(Linear(5, 4, rng=np.random.default_rng(2)), activation())

        _run_parity(factory, _batches(3, (9, 5)))

    @pytest.mark.parametrize("alpha", [1.0, 0.7])
    def test_elu(self, alpha):
        def factory():
            return Sequential(Linear(5, 4, rng=np.random.default_rng(2)), ELU(alpha))

        _run_parity(factory, _batches(3, (9, 5)))

    def test_dropout_consumes_rng_in_eager_draw_order(self):
        def factory():
            rng = np.random.default_rng(11)
            return Sequential(
                Linear(6, 8, rng=rng), ELU(), Dropout(0.4, rng=rng), Linear(8, 2, rng=rng)
            )

        _run_parity(factory, _batches(5, (10, 6)))

    def test_sequential_mlp(self):
        def factory():
            return MLP(
                5, (8, 4), 2, activation="elu", rng=np.random.default_rng(4)
            )

        _run_parity(factory, _batches(4, (16, 5)))

    def test_mlp_with_dropout_and_cosine_output(self):
        def factory():
            return MLP(
                5,
                (8,),
                3,
                activation="elu",
                cosine_output=True,
                dropout=0.3,
                rng=np.random.default_rng(4),
            )

        _run_parity(factory, _batches(4, (16, 5)))

    def test_representation_network_with_elastic_net(self):
        """The CERL encoder head: cosine-normalised MLP + traced elastic net."""

        def factory():
            return RepresentationNetwork(
                in_features=6,
                representation_dim=4,
                hidden_sizes=(8,),
                rng=np.random.default_rng(5),
            )

        def loss_with_penalty(module):
            def loss(out):
                return (out * out).sum() + module.elastic_net()

            return loss

        eager_mod = factory()
        tape_mod = factory()
        batches = _batches(3, (10, 6))
        tape = None
        for x in batches:
            for param in eager_mod.parameters():
                param.zero_grad()
            eager_total = loss_with_penalty(eager_mod)(eager_mod.forward(Tensor(x)))
            eager_total.backward()

            feeds = {"x": x}
            if tape is None:
                trace = Trace(dict(feeds))
                with activate_trace(trace):
                    total = loss_with_penalty(tape_mod)(
                        tape_mod.forward(trace.input_leaf("x"))
                    )
                tape = Tape(trace, total, [("total", total)])
            else:
                tape.run_forward(feeds)
            tape.run_backward()

            assert float(tape.total.item()) == float(eager_total.item())
            for eager_param, tape_param in zip(
                eager_mod.parameters(), tape_mod.parameters()
            ):
                assert np.array_equal(eager_param.grad, tape_param.grad)

    def test_outcome_heads_factual_masked(self):
        """Both CERL outcome heads through the masked factual combination."""

        def factory():
            return OutcomeHeads(
                representation_dim=6, hidden_sizes=(8,), rng=np.random.default_rng(3)
            )

        eager_heads = factory()
        tape_heads = factory()
        rng = np.random.default_rng(0)
        batches = [
            (rng.normal(size=(10, 6)), rng.integers(0, 2, size=10).astype(np.float64))
            for _ in range(3)
        ]
        tape = None
        for reps, mask in batches:
            for param in eager_heads.parameters():
                param.zero_grad()
            pred = eager_heads.factual_masked(Tensor(reps), Tensor(mask))
            eager_total = (pred * pred).sum()
            eager_total.backward()

            feeds = {"reps": reps, "mask": mask}
            if tape is None:
                trace = Trace(dict(feeds))
                with activate_trace(trace):
                    traced = tape_heads.factual_masked(
                        trace.input_leaf("reps"), trace.input_leaf("mask")
                    )
                    total = (traced * traced).sum()
                tape = Tape(trace, total, [("total", total)])
            else:
                tape.run_forward(feeds)
            tape.run_backward()

            assert float(tape.total.item()) == float(eager_total.item())
            for eager_param, tape_param in zip(
                eager_heads.parameters(), tape_heads.parameters()
            ):
                assert np.array_equal(eager_param.grad, tape_param.grad)


class TestTraceMechanics:
    def test_replay_is_allocation_free(self):
        """Workspace identities never change across replays (no fresh arrays)."""
        factory = lambda: MLP(5, (8,), 2, rng=np.random.default_rng(4))  # noqa: E731
        module = factory()
        x = np.random.default_rng(0).normal(size=(16, 5))
        trace = Trace({"x": x})
        with activate_trace(trace):
            out = module.forward(trace.input_leaf("x"))
            total = (out * out).sum()
        tape = Tape(trace, total, [("total", total)])
        tape.run_backward()
        idents = tape.buffer_ids()
        for _ in range(5):
            tape.run_forward({"x": np.random.default_rng(1).normal(size=(16, 5))})
            tape.run_backward()
            assert tape.buffer_ids() == idents

    def test_param_grads_are_tape_workspaces(self):
        """``param.grad`` after a tape backward aliases the reused buffer."""
        module = Linear(4, 2, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(6, 4))
        trace = Trace({"x": x})
        with activate_trace(trace):
            out = module.forward(trace.input_leaf("x"))
            total = (out * out).sum()
        tape = Tape(trace, total, [("total", total)])
        tape.run_backward()
        first = [id(p.grad) for p in module.parameters()]
        tape.run_forward({"x": x})
        tape.run_backward()
        assert [id(p.grad) for p in module.parameters()] == first

    def test_eager_graph_node_rejected(self):
        """Pre-built eager graph values must not silently become constants."""
        leaked = Tensor(np.ones(3), requires_grad=True) * 2.0
        trace = Trace({"x": np.ones(3)})
        leaf = trace.input_leaf("x")
        with pytest.raises(TraceError):
            leaf * leaked

    def test_untraceable_ops_raise(self):
        trace = Trace({"x": np.ones((3, 3))})
        leaf = trace.input_leaf("x")
        with pytest.raises(TraceError):
            leaf.max()
        with pytest.raises(TraceError):
            leaf.softmax()
        with pytest.raises(TraceError):
            leaf.backward()

    def test_elastic_net_penalty_lifts_via_active_trace(self):
        """The penalty has no traced operand; it must use ``current_trace``."""
        module = Linear(4, 3, rng=np.random.default_rng(2))
        params = module.parameters()

        for param in params:
            param.zero_grad()
        eager_total = elastic_net_penalty(params, l1_ratio=0.5)
        eager_total.backward()
        eager_grads = [p.grad.copy() for p in params]

        trace = Trace({})
        with activate_trace(trace):
            total = elastic_net_penalty(params, l1_ratio=0.5)
        tape = Tape(trace, total, [("total", total)])
        tape.run_backward()
        assert float(tape.total.item()) == float(eager_total.item())
        for grad, param in zip(eager_grads, params):
            assert np.array_equal(grad, param.grad)
