"""Parity tests for the no-graph inference fast path (``Module.infer``).

Every hand-written kernel must produce *bitwise* the same numbers as the
Tensor forward under ``no_grad`` — the fast path is an execution strategy,
never a numerical change.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    ELU,
    MLP,
    CosineNormLinear,
    Dropout,
    Identity,
    Linear,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    Tensor,
    Workspace,
    no_grad,
)


def tensor_forward(module: Module, x: np.ndarray) -> np.ndarray:
    with no_grad():
        return module(Tensor(x)).data


class TestLayerParity:
    @pytest.mark.parametrize("n", [1, 2, 7, 128, 1024])
    def test_linear(self, rng, n):
        layer = Linear(13, 9, rng=rng)
        x = rng.normal(size=(n, 13))
        np.testing.assert_array_equal(layer.infer(x), tensor_forward(layer, x))

    def test_linear_without_bias(self, rng):
        layer = Linear(6, 4, bias=False, rng=rng)
        x = rng.normal(size=(32, 6))
        np.testing.assert_array_equal(layer.infer(x), tensor_forward(layer, x))

    @pytest.mark.parametrize("n", [2, 55, 1024])
    def test_cosine_norm_linear(self, rng, n):
        layer = CosineNormLinear(13, 9, rng=rng)
        x = rng.normal(size=(n, 13)) * 3.0
        np.testing.assert_array_equal(layer.infer(x), tensor_forward(layer, x))

    @pytest.mark.parametrize(
        "activation", [ReLU(), ELU(), ELU(alpha=0.3), Tanh(), Sigmoid()]
    )
    def test_activations(self, rng, activation):
        x = rng.normal(size=(64, 17)) * 2.0
        np.testing.assert_array_equal(activation.infer(x), tensor_forward(activation, x))

    def test_identity_passes_through_unchanged(self, rng):
        x = rng.normal(size=(8, 3))
        assert Identity().infer(x) is x

    def test_sequential_and_mlp(self, rng):
        for cosine in (False, True):
            mlp = MLP(
                11, (24, 16), 8, activation="elu", cosine_output=cosine,
                rng=np.random.default_rng(5),
            )
            x = rng.normal(size=(200, 11))
            np.testing.assert_array_equal(mlp.infer(x), tensor_forward(mlp, x))

    def test_sequential_container_directly(self, rng):
        seq = Sequential(Linear(5, 7, rng=rng), ReLU(), Linear(7, 3, rng=rng))
        x = rng.normal(size=(40, 5))
        np.testing.assert_array_equal(seq.infer(x), tensor_forward(seq, x))


class TestDropoutParity:
    def test_eval_mode_is_identity(self, rng):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        layer.eval()
        x = rng.normal(size=(16, 4))
        assert layer.infer(x) is x

    def test_training_mode_infer_has_eval_semantics(self, rng):
        """``infer`` is a prediction path: a module left in training mode must
        not inject dropout noise (regression for the documented contract —
        "bit-identical to the Tensor forward under ``no_grad``" in eval)."""
        x = rng.normal(size=(64, 8))
        layer = Dropout(0.4, rng=np.random.default_rng(9))
        assert layer.training
        assert layer.infer(x) is x

    def test_training_mode_infer_does_not_consume_rng(self, rng):
        """A training-mode ``infer`` must not advance the dropout RNG: that
        would silently perturb the next training minibatch's mask."""
        x = rng.normal(size=(32, 5))
        touched = Dropout(0.4, rng=np.random.default_rng(9))
        untouched = Dropout(0.4, rng=np.random.default_rng(9))
        for _ in range(3):
            touched.infer(x)
        np.testing.assert_array_equal(
            tensor_forward(touched, x), tensor_forward(untouched, x)
        )

    def test_mlp_with_dropout_infer_matches_eval_forward(self, rng):
        """Through a full MLP: training-mode ``infer`` == eval-mode forward."""
        mlp = MLP(7, (12,), 4, activation="elu", dropout=0.3, rng=np.random.default_rng(3))
        x = rng.normal(size=(50, 7))
        assert any(isinstance(m, Dropout) for m in mlp.modules())
        out = mlp.infer(x).copy()
        mlp.eval()
        np.testing.assert_array_equal(out, tensor_forward(mlp, x))

    def test_fallback_infer_restores_training_flags(self, rng):
        """The generic fallback drops to eval during the call and restores the
        exact per-module mode flags afterwards."""

        class WithDropout(Module):
            def __init__(self):
                super().__init__()
                self.lin = Linear(4, 4, rng=np.random.default_rng(0))
                self.drop = Dropout(0.5, rng=np.random.default_rng(1))

            def forward(self, x):
                return self.drop(self.lin(x))

        module = WithDropout()
        module.lin.training = False  # deliberately mixed modes
        x = rng.normal(size=(6, 4))
        module.eval()
        expected = tensor_forward(module, x)
        module.train()
        module.lin.training = False
        np.testing.assert_array_equal(module.infer(x), expected)
        assert module.training and module.drop.training
        assert not module.lin.training


class TestWorkspace:
    def test_buffers_reused_for_stable_shapes(self):
        ws = Workspace()
        first = ws.get("out", (4, 3))
        assert ws.get("out", (4, 3)) is first
        assert ws.get("out", (5, 3)) is not first
        ws.clear()
        assert ws.get("out", (4, 3)) is not first

    def test_layer_output_is_overwritten_by_next_call(self, rng):
        layer = Linear(6, 4, rng=rng)
        a = layer.infer(rng.normal(size=(10, 6)))
        kept = a.copy()
        b = layer.infer(rng.normal(size=(10, 6)))
        assert b is a  # same buffer
        assert not np.array_equal(kept, a)

    def test_repeated_calls_stay_exact(self, rng):
        mlp = MLP(9, (12,), 5, activation="tanh", rng=np.random.default_rng(2))
        x = rng.normal(size=(33, 9))
        expected = tensor_forward(mlp, x)
        for _ in range(4):
            np.testing.assert_array_equal(mlp.infer(x), expected)


class TestFallback:
    def test_custom_module_without_kernel_uses_tensor_path(self, rng):
        class Doubler(Module):
            def forward(self, x):
                return x * 2.0 + 1.0

        module = Doubler()
        x = rng.normal(size=(6, 2))
        np.testing.assert_array_equal(module.infer(x), x * 2.0 + 1.0)

    def test_fallback_records_no_graph(self, rng):
        class Affine(Module):
            def __init__(self):
                super().__init__()
                self.lin = Linear(3, 3, rng=np.random.default_rng(0))

            def forward(self, x):
                return self.lin(x).relu()

        module = Affine()
        out = module.infer(rng.normal(size=(5, 3)))
        assert isinstance(out, np.ndarray)
        for param in module.parameters():
            assert param.grad is None
