"""Tests for the neural-network layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    CosineNormLinear,
    Dropout,
    Linear,
    MLP,
    Sequential,
    Tensor,
    make_activation,
)


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(5, 3, rng=rng)
        out = layer(Tensor(np.ones((7, 5))))
        assert out.shape == (7, 3)

    def test_no_bias_option(self, rng):
        layer = Linear(4, 2, bias=False, rng=rng)
        assert len(layer.parameters()) == 1

    def test_linear_matches_manual_computation(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).numpy(), expected)

    def test_invalid_dimensions(self, rng):
        with pytest.raises(ValueError):
            Linear(0, 3, rng=rng)


class TestCosineNormLinear:
    def test_output_bounded_in_unit_interval(self, rng):
        layer = CosineNormLinear(10, 6, rng=rng)
        x = rng.normal(size=(50, 10)) * 100.0
        out = layer(Tensor(x)).numpy()
        assert np.all(out <= 1.0 + 1e-9)
        assert np.all(out >= -1.0 - 1e-9)

    def test_scale_invariance_of_inputs(self, rng):
        """Cosine normalisation removes the covariate-magnitude dependence (Eq. 2)."""
        layer = CosineNormLinear(8, 4, rng=rng)
        x = rng.normal(size=(5, 8))
        out_small = layer(Tensor(x)).numpy()
        out_large = layer(Tensor(x * 1000.0)).numpy()
        np.testing.assert_allclose(out_small, out_large, atol=1e-9)

    def test_gradients_flow_to_weights(self, rng):
        layer = CosineNormLinear(4, 3, rng=rng)
        layer(Tensor(rng.normal(size=(6, 4)))).sum().backward()
        assert layer.weight.grad is not None
        assert np.any(layer.weight.grad != 0)

    def test_invalid_dimensions(self, rng):
        with pytest.raises(ValueError):
            CosineNormLinear(3, 0, rng=rng)


class TestActivationsAndDropout:
    @pytest.mark.parametrize("name", ["relu", "elu", "tanh", "sigmoid", "identity", "linear"])
    def test_make_activation_known_names(self, name):
        module = make_activation(name)
        out = module(Tensor(np.array([-1.0, 0.0, 1.0])))
        assert out.shape == (3,)

    def test_make_activation_unknown_name(self):
        with pytest.raises(ValueError):
            make_activation("swishish")

    def test_dropout_inactive_in_eval_mode(self, rng):
        dropout = Dropout(0.5, rng=rng)
        dropout.eval()
        x = np.ones((4, 4))
        np.testing.assert_allclose(dropout(Tensor(x)).numpy(), x)

    def test_dropout_masks_in_train_mode(self, rng):
        dropout = Dropout(0.5, rng=rng)
        out = dropout(Tensor(np.ones((200, 10)))).numpy()
        dropped_fraction = np.mean(out == 0.0)
        assert 0.3 < dropped_fraction < 0.7

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestSequentialAndMLP:
    def test_sequential_applies_in_order(self, rng):
        seq = Sequential(Linear(3, 5, rng=rng), make_activation("relu"), Linear(5, 2, rng=rng))
        out = seq(Tensor(np.ones((4, 3))))
        assert out.shape == (4, 2)
        assert len(seq) == 3

    def test_sequential_append(self, rng):
        seq = Sequential(Linear(3, 3, rng=rng))
        seq.append(Linear(3, 1, rng=rng))
        assert seq(Tensor(np.ones((2, 3)))).shape == (2, 1)

    def test_mlp_shapes_and_parameter_count(self, rng):
        mlp = MLP(10, (16, 8), 4, rng=rng)
        assert mlp(Tensor(np.ones((3, 10)))).shape == (3, 4)
        expected = 10 * 16 + 16 + 16 * 8 + 8 + 8 * 4 + 4
        assert mlp.num_parameters() == expected

    def test_mlp_cosine_output_bounded(self, rng):
        mlp = MLP(6, (12,), 5, cosine_output=True, rng=rng)
        out = mlp(Tensor(rng.normal(size=(20, 6)) * 50)).numpy()
        assert np.all(np.abs(out) <= 1.0 + 1e-9)

    def test_mlp_no_hidden_layers(self, rng):
        mlp = MLP(4, (), 2, rng=rng)
        assert mlp(Tensor(np.ones((3, 4)))).shape == (3, 2)

    def test_mlp_output_activation(self, rng):
        mlp = MLP(4, (8,), 2, output_activation="sigmoid", rng=rng)
        out = mlp(Tensor(rng.normal(size=(10, 4)))).numpy()
        assert np.all((out > 0) & (out < 1))

    def test_mlp_is_deterministic_given_seed(self):
        mlp_a = MLP(4, (8,), 2, rng=np.random.default_rng(5))
        mlp_b = MLP(4, (8,), 2, rng=np.random.default_rng(5))
        x = Tensor(np.ones((2, 4)))
        np.testing.assert_allclose(mlp_a(x).numpy(), mlp_b(x).numpy())


class TestUnseededFallbackDeterminism:
    """The no-rng fallback must be a fixed seed, never OS entropy (RPR001)."""

    def test_linear_fallback_is_deterministic(self):
        a, b = Linear(4, 3), Linear(4, 3)
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_mlp_fallback_is_deterministic(self):
        x = Tensor(np.ones((2, 4)))
        np.testing.assert_allclose(MLP(4, (8,), 2)(x).numpy(), MLP(4, (8,), 2)(x).numpy())

    def test_explicit_rng_overrides_fallback(self):
        seeded = Linear(4, 3, rng=np.random.default_rng(99))
        fallback = Linear(4, 3)
        assert not np.array_equal(seeded.weight.data, fallback.weight.data)
