"""Tests for Module/Parameter registration, state handling and freezing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Linear, MLP, Module, Parameter, Sequential, Tensor


class Toy(Module):
    def __init__(self):
        super().__init__()
        self.layer = Linear(3, 2, rng=np.random.default_rng(0))
        self.scale = Parameter(np.ones(2))

    def forward(self, x):
        return self.layer(x) * self.scale


class TestRegistration:
    def test_named_parameters_includes_children(self):
        toy = Toy()
        names = dict(toy.named_parameters())
        assert "scale" in names
        assert "layer.weight" in names
        assert "layer.bias" in names

    def test_parameters_flat_list(self):
        toy = Toy()
        assert len(toy.parameters()) == 3

    def test_num_parameters_counts_scalars(self):
        toy = Toy()
        assert toy.num_parameters() == 3 * 2 + 2 + 2

    def test_modules_traversal(self):
        mlp = MLP(4, (8,), 2, rng=np.random.default_rng(0))
        assert sum(1 for _ in mlp.modules()) > 3

    def test_register_module_explicit(self):
        container = Module()
        container.register_module("child", Linear(2, 2, rng=np.random.default_rng(0)))
        assert any(name.startswith("child.") for name, _ in container.named_parameters())


class TestStateDict:
    def test_round_trip_restores_values(self):
        toy_a = Toy()
        toy_b = Toy()
        state = toy_a.state_dict()
        toy_b.load_state_dict(state)
        x = Tensor(np.ones((1, 3)))
        np.testing.assert_allclose(toy_a(x).numpy(), toy_b(x).numpy())

    def test_state_dict_is_a_copy(self):
        toy = Toy()
        state = toy.state_dict()
        state["scale"][:] = 99.0
        assert not np.allclose(toy.scale.data, 99.0)

    def test_missing_key_raises(self):
        toy = Toy()
        state = toy.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            toy.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        toy = Toy()
        state = toy.state_dict()
        state["scale"] = np.ones(5)
        with pytest.raises(ValueError):
            toy.load_state_dict(state)

    def test_clone_is_independent(self):
        toy = Toy()
        clone = toy.clone()
        clone.scale.data[:] = 42.0
        assert not np.allclose(toy.scale.data, 42.0)


class TestModes:
    def test_freeze_unfreeze(self):
        toy = Toy()
        toy.freeze()
        assert all(not p.requires_grad for p in toy.parameters())
        toy.unfreeze()
        assert all(p.requires_grad for p in toy.parameters())

    def test_frozen_parameters_receive_no_gradient(self):
        toy = Toy()
        toy.freeze()
        out = toy(Tensor(np.ones((2, 3)))).sum()
        out.backward()
        assert all(p.grad is None for p in toy.parameters())

    def test_train_eval_propagates(self):
        seq = Sequential(Linear(2, 2, rng=np.random.default_rng(0)))
        seq.eval()
        assert all(not module.training for module in seq.modules())
        seq.train()
        assert all(module.training for module in seq.modules())

    def test_zero_grad_clears_all(self):
        toy = Toy()
        toy(Tensor(np.ones((2, 3)))).sum().backward()
        assert any(p.grad is not None for p in toy.parameters())
        toy.zero_grad()
        assert all(p.grad is None for p in toy.parameters())

    def test_forward_not_implemented_on_base(self):
        with pytest.raises(NotImplementedError):
            Module()(Tensor(np.ones(2)))
