"""Tests for the optimisers and learning-rate schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Adam, CosineAnnealingLR, Parameter, SGD, StepLR, Tensor, clip_grad_norm


def quadratic_loss(param: Parameter) -> Tensor:
    """Simple convex objective ||p - 3||^2 with minimum at 3."""
    diff = param - Tensor(np.full(param.shape, 3.0))
    return (diff * diff).sum()


def run_steps(optimizer, param: Parameter, steps: int = 200) -> float:
    for _ in range(steps):
        optimizer.zero_grad()
        loss = quadratic_loss(param)
        loss.backward()
        optimizer.step()
    return quadratic_loss(param).item()


class TestSGD:
    def test_converges_on_quadratic(self):
        param = Parameter(np.zeros(4))
        final = run_steps(SGD([param], lr=0.05), param)
        assert final < 1e-4
        np.testing.assert_allclose(param.data, np.full(4, 3.0), atol=1e-2)

    def test_momentum_converges(self):
        param = Parameter(np.zeros(4))
        final = run_steps(SGD([param], lr=0.02, momentum=0.9), param)
        assert final < 1e-4

    def test_weight_decay_shrinks_solution(self):
        plain = Parameter(np.zeros(2))
        decayed = Parameter(np.zeros(2))
        run_steps(SGD([plain], lr=0.05), plain)
        run_steps(SGD([decayed], lr=0.05, weight_decay=1.0), decayed)
        assert np.all(np.abs(decayed.data) < np.abs(plain.data))

    def test_skips_parameters_without_grad(self):
        param = Parameter(np.zeros(2))
        optimizer = SGD([param], lr=0.1)
        optimizer.step()
        np.testing.assert_allclose(param.data, np.zeros(2))

    def test_invalid_arguments(self):
        param = Parameter(np.zeros(2))
        with pytest.raises(ValueError):
            SGD([param], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([param], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        param = Parameter(np.zeros(4))
        final = run_steps(Adam([param], lr=0.1), param)
        assert final < 1e-3

    def test_bias_correction_first_step_magnitude(self):
        """The very first Adam update has magnitude ~lr regardless of gradient scale."""
        param = Parameter(np.zeros(1))
        optimizer = Adam([param], lr=0.1)
        (param * 1000.0).sum().backward()
        optimizer.step()
        assert abs(param.data[0]) == pytest.approx(0.1, rel=1e-3)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], betas=(1.2, 0.9))

    def test_weight_decay_applied(self):
        param = Parameter(np.full(2, 10.0))
        optimizer = Adam([param], lr=0.1, weight_decay=0.5)
        # Zero data gradient: only weight decay drives the update.
        (param * 0.0).sum().backward()
        optimizer.step()
        assert np.all(param.data < 10.0)


class TestPositionalState:
    """Optimiser state is keyed by slot in ``self.parameters``, not ``id()``.

    The historical id-keyed dicts leaked entries when a parameter list was
    rebuilt, and a freed parameter's reused id could silently hand its Adam
    moments to an unrelated new parameter.  Positional state is bounded by
    construction and survives parameter-object replacement at the same slot.
    """

    def test_adam_state_is_bounded_by_parameter_count(self):
        params = [Parameter(np.zeros(3)), Parameter(np.zeros((2, 2)))]
        optimizer = Adam(params, lr=0.1)
        for _ in range(5):
            for param in params:
                param.grad = np.ones_like(param.data)
            optimizer.step()
        assert len(optimizer._m) == len(optimizer.parameters)
        assert len(optimizer._v) == len(optimizer.parameters)

    def test_adam_slot_state_survives_object_replacement(self):
        """Replacing a slot's Parameter object continues its trajectory.

        Under id-keying the replacement silently restarted from zero moments;
        a positional optimiser treats the slot as the same logical tensor.
        """

        def trajectory(replace_after: int):
            param = Parameter(np.full(3, 2.0))
            optimizer = Adam([param], lr=0.1)
            grad_rng = np.random.default_rng(0)
            for step in range(6):
                if step == replace_after:
                    clone = Parameter(optimizer.parameters[0].data.copy())
                    optimizer.parameters[0] = clone
                optimizer.parameters[0].grad = grad_rng.normal(size=3)
                optimizer.step()
            return optimizer.parameters[0].data.copy()

        assert np.array_equal(trajectory(replace_after=3), trajectory(replace_after=99))

    def test_adam_state_resets_when_slot_shape_changes(self):
        param = Parameter(np.zeros(4))
        optimizer = Adam([param], lr=0.1)
        param.grad = np.ones(4)
        optimizer.step()
        replacement = Parameter(np.zeros((2, 3)))
        optimizer.parameters[0] = replacement
        replacement.grad = np.ones((2, 3))
        optimizer.step()
        assert optimizer._m[0].shape == (2, 3)
        assert np.all(np.isfinite(replacement.data))

    def test_sgd_velocity_is_positional(self):
        params = [Parameter(np.zeros(2))]
        optimizer = SGD(params, lr=0.1, momentum=0.9)
        params[0].grad = np.ones(2)
        optimizer.step()
        first = params[0].data.copy()
        clone = Parameter(first.copy())
        optimizer.parameters[0] = clone
        clone.grad = np.ones(2)
        optimizer.step()
        # Momentum carried over: second step is larger than a cold first step.
        assert np.all(np.abs(clone.data - first) > np.abs(first))

    def test_step_never_mutates_grad_buffers(self):
        """The tape backend owns ``param.grad``; optimisers must not write it."""
        for optimizer_cls, kwargs in [
            (Adam, dict(lr=0.1, weight_decay=0.5)),
            (SGD, dict(lr=0.1, momentum=0.9, weight_decay=0.5)),
        ]:
            param = Parameter(np.full(3, 2.0))
            optimizer = optimizer_cls([param], **kwargs)
            grad = np.array([1.0, -2.0, 3.0])
            param.grad = grad
            optimizer.step()
            assert np.array_equal(grad, [1.0, -2.0, 3.0])


class TestGradClipping:
    def test_clip_reduces_norm(self):
        param = Parameter(np.zeros(3))
        param.grad = np.array([3.0, 4.0, 0.0])
        pre_norm = clip_grad_norm([param], max_norm=1.0)
        assert pre_norm == pytest.approx(5.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0, rel=1e-6)

    def test_no_clip_when_below_threshold(self):
        param = Parameter(np.zeros(2))
        param.grad = np.array([0.3, 0.4])
        clip_grad_norm([param], max_norm=10.0)
        np.testing.assert_allclose(param.grad, [0.3, 0.4])

    def test_empty_gradients_return_zero(self):
        assert clip_grad_norm([Parameter(np.zeros(2))], max_norm=1.0) == 0.0


class TestSchedules:
    def test_step_lr_decays_at_boundaries(self):
        optimizer = SGD([Parameter(np.zeros(1))], lr=1.0)
        schedule = StepLR(optimizer, step_size=2, gamma=0.5)
        for _ in range(4):
            schedule.step()
        assert optimizer.lr == pytest.approx(0.25)

    def test_step_lr_invalid_step_size(self):
        optimizer = SGD([Parameter(np.zeros(1))], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(optimizer, step_size=0)

    def test_cosine_annealing_reaches_minimum(self):
        optimizer = SGD([Parameter(np.zeros(1))], lr=1.0)
        schedule = CosineAnnealingLR(optimizer, total_steps=10, eta_min=0.1)
        for _ in range(10):
            schedule.step()
        assert optimizer.lr == pytest.approx(0.1, abs=1e-9)

    def test_cosine_annealing_monotone_decrease(self):
        optimizer = SGD([Parameter(np.zeros(1))], lr=1.0)
        schedule = CosineAnnealingLR(optimizer, total_steps=5)
        rates = []
        for _ in range(5):
            schedule.step()
            rates.append(optimizer.lr)
        assert all(a >= b for a, b in zip(rates, rates[1:]))
