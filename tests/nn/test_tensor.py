"""Unit and property tests for the autograd engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import Tensor, concatenate, is_grad_enabled, no_grad, stack


def numerical_gradient(func, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of a scalar-valued function."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = func(x)
        flat[i] = original - eps
        lower = func(x)
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2 * eps)
    return grad


def check_gradient(build_loss, value: np.ndarray, atol: float = 1e-5) -> None:
    """Compare autograd gradients against finite differences."""
    tensor = Tensor(value.copy(), requires_grad=True)
    loss = build_loss(tensor)
    loss.backward()
    analytic = tensor.grad

    def scalar(x: np.ndarray) -> float:
        return build_loss(Tensor(x)).item()

    numeric = numerical_gradient(scalar, value.copy())
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=1e-4)


class TestBasicOps:
    def test_addition_and_scalar_broadcast(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]], requires_grad=True)
        out = (a + 1.0).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 2)))

    def test_subtraction_gradients(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 5.0], requires_grad=True)
        (a - b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [-1.0, -1.0])

    def test_multiplication_gradient(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([5.0, 7.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0, 7.0])
        np.testing.assert_allclose(b.grad, [2.0, 3.0])

    def test_division_gradient(self):
        check_gradient(lambda t: (t / 3.0).sum(), np.array([1.0, 2.0, 4.0]))
        check_gradient(lambda t: (6.0 / t).sum(), np.array([1.0, 2.0, 4.0]))

    def test_power_gradient(self):
        check_gradient(lambda t: (t ** 3).sum(), np.array([1.0, -2.0, 0.5]))

    def test_matmul_gradient(self):
        rng = np.random.default_rng(0)
        a_value = rng.normal(size=(3, 4))
        b = Tensor(rng.normal(size=(4, 2)))
        check_gradient(lambda t: (t @ b).sum(), a_value)

    def test_matmul_right_operand_gradient(self):
        rng = np.random.default_rng(1)
        a = Tensor(rng.normal(size=(3, 4)))
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        ((a @ b) ** 2).sum().backward()
        assert b.grad is not None
        assert b.grad.shape == (4, 2)

    def test_negation(self):
        a = Tensor([1.0, -2.0], requires_grad=True)
        (-a).sum().backward()
        np.testing.assert_allclose(a.grad, [-1.0, -1.0])

    def test_radd_rsub_rmul(self):
        a = Tensor([2.0], requires_grad=True)
        assert (3.0 + a).item() == pytest.approx(5.0)
        assert (3.0 - a).item() == pytest.approx(1.0)
        assert (3.0 * a).item() == pytest.approx(6.0)

    def test_pow_rejects_tensor_exponent(self):
        a = Tensor([2.0])
        with pytest.raises(TypeError):
            a ** np.array([1.0, 2.0])


class TestBroadcasting:
    def test_row_vector_broadcast_gradient(self):
        matrix = np.arange(6, dtype=np.float64).reshape(2, 3)
        row = Tensor(np.array([[1.0, 2.0, 3.0]]), requires_grad=True)
        (Tensor(matrix) * row).sum().backward()
        np.testing.assert_allclose(row.grad, matrix.sum(axis=0, keepdims=True))

    def test_column_vector_broadcast_gradient(self):
        matrix = np.arange(6, dtype=np.float64).reshape(2, 3)
        col = Tensor(np.array([[1.0], [2.0]]), requires_grad=True)
        (Tensor(matrix) + col).sum().backward()
        np.testing.assert_allclose(col.grad, [[3.0], [3.0]])

    def test_scalar_tensor_broadcast(self):
        scalar = Tensor(2.0, requires_grad=True)
        matrix = Tensor(np.ones((3, 4)))
        (matrix * scalar).sum().backward()
        assert scalar.grad == pytest.approx(12.0)


class TestReductionsAndShape:
    def test_sum_axis_gradient(self):
        check_gradient(lambda t: (t.sum(axis=0) ** 2).sum(), np.arange(6.0).reshape(2, 3))

    def test_mean_gradient(self):
        a = Tensor(np.arange(4.0), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, np.full(4, 0.25))

    def test_max_gradient_splits_ties(self):
        a = Tensor(np.array([1.0, 3.0, 3.0]), requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.0, 0.5, 0.5])

    def test_reshape_round_trip(self):
        value = np.arange(6.0).reshape(2, 3)
        check_gradient(lambda t: (t.reshape(3, 2) ** 2).sum(), value)

    def test_transpose_gradient(self):
        value = np.arange(6.0).reshape(2, 3)
        check_gradient(lambda t: (t.T @ Tensor(np.ones((2, 1)))).sum(), value)

    def test_getitem_gradient(self):
        a = Tensor(np.arange(10.0), requires_grad=True)
        a[np.array([1, 3, 3])].sum().backward()
        expected = np.zeros(10)
        expected[1] = 1.0
        expected[3] = 2.0
        np.testing.assert_allclose(a.grad, expected)

    def test_backward_requires_scalar(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            a.backward()


class TestNonlinearities:
    @pytest.mark.parametrize(
        "op",
        [
            lambda t: t.exp().sum(),
            lambda t: (t + 3.0).log().sum(),
            lambda t: (t + 3.0).sqrt().sum(),
            lambda t: t.tanh().sum(),
            lambda t: t.sigmoid().sum(),
            lambda t: t.relu().sum(),
            lambda t: t.elu().sum(),
            lambda t: t.abs().sum(),
            lambda t: t.softmax(axis=-1).max(),
            lambda t: t.logsumexp(axis=-1).sum(),
        ],
    )
    def test_gradients_match_finite_differences(self, op):
        rng = np.random.default_rng(2)
        value = rng.normal(size=(3, 4)) * 0.9 + 0.2
        check_gradient(op, value, atol=1e-4)

    def test_clip_gradient_masks_outside(self):
        a = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_softmax_rows_sum_to_one(self):
        rng = np.random.default_rng(3)
        probs = Tensor(rng.normal(size=(5, 7))).softmax(axis=1)
        np.testing.assert_allclose(probs.numpy().sum(axis=1), np.ones(5), atol=1e-12)

    def test_norm_positive_and_differentiable(self):
        check_gradient(lambda t: t.norm(axis=1).sum(), np.random.default_rng(4).normal(size=(3, 5)))


class TestConcatenateStack:
    def test_concatenate_routes_gradients(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((4, 3)), requires_grad=True)
        out = concatenate([a, b], axis=0)
        assert out.shape == (6, 3)
        (out * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 2.0))
        np.testing.assert_allclose(b.grad, np.full((4, 3), 2.0))

    def test_concatenate_axis1(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((2, 1)), requires_grad=True)
        out = concatenate([a, b], axis=1)
        assert out.shape == (2, 4)

    def test_concatenate_empty_raises(self):
        with pytest.raises(ValueError):
            concatenate([])

    def test_stack_shapes_and_gradient(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))

    def test_stack_empty_raises(self):
        with pytest.raises(ValueError):
            stack([])


class TestGradMode:
    def test_no_grad_blocks_graph(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            out = (a * 2.0).sum()
        assert is_grad_enabled()
        assert not out.requires_grad

    def test_detach_cuts_graph(self):
        a = Tensor(np.ones(3), requires_grad=True)
        detached = (a * 2.0).detach()
        assert not detached.requires_grad

    def test_gradient_accumulates_across_uses(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        ((a * 2.0).sum() + (a * 3.0).sum()).backward()
        np.testing.assert_allclose(a.grad, [5.0, 5.0])

    def test_zero_grad_resets(self):
        a = Tensor(np.ones(2), requires_grad=True)
        (a * 2.0).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_repr_and_item(self):
        a = Tensor([[1.0]], requires_grad=True)
        assert "requires_grad" in repr(a)
        assert a.item() == pytest.approx(1.0)
        assert len(Tensor(np.zeros((4, 2)))) == 4


class TestPropertyBased:
    @given(
        arrays(
            np.float64,
            array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=6),
            elements=st.floats(-10, 10, allow_nan=False),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_sum_matches_numpy(self, value):
        assert Tensor(value).sum().item() == pytest.approx(float(value.sum()), abs=1e-8)

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 5), st.integers(1, 5)),
            elements=st.floats(-5, 5, allow_nan=False),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_linear_gradient_is_exact(self, value):
        """d/dx sum(3 x) == 3 everywhere, regardless of the input values."""
        tensor = Tensor(value, requires_grad=True)
        (tensor * 3.0).sum().backward()
        np.testing.assert_allclose(tensor.grad, np.full(value.shape, 3.0))

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 4), st.integers(1, 4)),
            elements=st.floats(-3, 3, allow_nan=False),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_tanh_output_bounded(self, value):
        out = Tensor(value).tanh().numpy()
        assert np.all(out <= 1.0) and np.all(out >= -1.0)


class TestGraphRelease:
    def test_second_backward_through_released_graph_raises(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        h = x * 3.0
        loss1 = h.sum()
        loss2 = (h * h).sum()
        loss1.backward()
        np.testing.assert_allclose(x.grad, [3.0, 3.0])
        x.grad = None
        with pytest.raises(RuntimeError, match="released graph"):
            loss2.backward()

    def test_repeat_backward_on_same_root_raises(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        loss = (a * a).sum()
        loss.backward()
        with pytest.raises(RuntimeError, match="released graph"):
            loss.backward()

    def test_retain_graph_allows_repeat_and_accumulates(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        loss = (a * a).sum()
        loss.backward(retain_graph=True)
        loss.backward()
        np.testing.assert_allclose(a.grad, [4.0, 8.0])
