"""Tests for the representation memory buffer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.memory import MemoryBuffer


def make_buffer(n: int = 40, dim: int = 6, treated_fraction: float = 0.5, seed: int = 0):
    rng = np.random.default_rng(seed)
    reps = rng.normal(size=(n, dim))
    treatments = (rng.random(n) < treated_fraction).astype(int)
    outcomes = rng.normal(size=n)
    return MemoryBuffer(reps, outcomes, treatments)


class TestConstruction:
    def test_basic_properties(self):
        buffer = make_buffer(30, 5)
        assert len(buffer) == 30
        assert buffer.dim == 5
        assert buffer.n_treated + buffer.n_control == 30

    def test_empty_buffer(self):
        buffer = MemoryBuffer.empty(8)
        assert len(buffer) == 0
        assert buffer.dim == 8

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            MemoryBuffer(np.zeros((5, 3)), np.zeros(4), np.zeros(5, dtype=int))

    def test_non_binary_treatments_raise(self):
        with pytest.raises(ValueError):
            MemoryBuffer(np.zeros((3, 2)), np.zeros(3), np.array([0, 1, 2]))

    def test_non_2d_representations_raise(self):
        with pytest.raises(ValueError):
            MemoryBuffer(np.zeros(5), np.zeros(5), np.zeros(5, dtype=int))

    def test_group_filtering(self):
        buffer = make_buffer(50)
        treated = buffer.group(1)
        assert treated.n_control == 0
        assert len(treated) == buffer.n_treated


class TestMergeAndTransform:
    def test_merge_concatenates(self):
        merged = make_buffer(10, seed=1).merge(make_buffer(15, seed=2))
        assert len(merged) == 25

    def test_merge_dim_mismatch_raises(self):
        with pytest.raises(ValueError):
            make_buffer(10, dim=4).merge(make_buffer(10, dim=6))

    def test_merge_with_empty(self):
        buffer = make_buffer(10, dim=4)
        merged = buffer.merge(MemoryBuffer.empty(4))
        assert len(merged) == 10

    def test_with_representations_replaces_only_features(self):
        buffer = make_buffer(12, dim=3)
        new_reps = np.ones((12, 7))
        replaced = buffer.with_representations(new_reps)
        assert replaced.dim == 7
        np.testing.assert_array_equal(replaced.outcomes, buffer.outcomes)
        np.testing.assert_array_equal(replaced.treatments, buffer.treatments)

    def test_with_representations_wrong_rows_raises(self):
        with pytest.raises(ValueError):
            make_buffer(12).with_representations(np.ones((10, 3)))


class TestReduce:
    def test_reduce_respects_budget(self):
        buffer = make_buffer(100)
        reduced = buffer.reduce(20)
        assert len(reduced) == 20

    def test_reduce_balances_arms(self):
        buffer = make_buffer(200, treated_fraction=0.5, seed=3)
        reduced = buffer.reduce(40)
        assert reduced.n_treated == 20
        assert reduced.n_control == 20

    def test_reduce_handles_scarce_arm(self):
        """When one arm has fewer units than its half-budget share, the other
        arm absorbs the remainder."""
        buffer = make_buffer(100, treated_fraction=0.05, seed=4)
        reduced = buffer.reduce(60)
        assert len(reduced) == min(60, len(buffer))
        assert reduced.n_treated <= buffer.n_treated

    def test_reduce_noop_when_under_budget(self):
        buffer = make_buffer(10)
        reduced = buffer.reduce(50)
        assert len(reduced) == 10

    def test_reduce_returns_copy(self):
        buffer = make_buffer(10)
        reduced = buffer.reduce(50)
        reduced.representations[:] = 0.0
        assert not np.allclose(buffer.representations, 0.0)

    def test_reduce_random_strategy(self):
        buffer = make_buffer(100, seed=5)
        reduced = buffer.reduce(30, strategy="random", rng=np.random.default_rng(0))
        assert len(reduced) == 30

    def test_reduce_unknown_strategy_raises(self):
        with pytest.raises(ValueError):
            make_buffer(50).reduce(10, strategy="kmeans")

    def test_reduce_invalid_budget_raises(self):
        with pytest.raises(ValueError):
            make_buffer(50).reduce(0)

    def test_reduced_buffer_mean_close_to_full_mean(self):
        """Herded memory preserves the (row-normalised) representation mean per arm."""
        rng = np.random.default_rng(6)
        reps = rng.normal(size=(300, 6)) + np.array([2.0, -1.0, 0.5, 0.0, 1.0, -0.5])
        treatments = (rng.random(300) < 0.5).astype(int)
        buffer = MemoryBuffer(reps, rng.normal(size=300), treatments)
        reduced = buffer.reduce(60)
        for arm in (0, 1):
            full = buffer.group(arm).representations
            kept = reduced.group(arm).representations
            full = full / np.linalg.norm(full, axis=1, keepdims=True)
            kept = kept / np.linalg.norm(kept, axis=1, keepdims=True)
            error = np.linalg.norm(kept.mean(axis=0) - full.mean(axis=0))
            assert error < 0.05
