"""Tests for the herding exemplar-selection algorithm."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import herding_selection, random_selection


def mean_approximation_error(features: np.ndarray, indices: np.ndarray) -> float:
    normalized = features / np.maximum(np.linalg.norm(features, axis=1, keepdims=True), 1e-12)
    return float(np.linalg.norm(normalized[indices].mean(axis=0) - normalized.mean(axis=0)))


class TestHerdingSelection:
    def test_returns_requested_number_of_unique_indices(self, rng):
        features = rng.normal(size=(50, 8))
        selected = herding_selection(features, 20)
        assert selected.shape == (20,)
        assert len(set(selected.tolist())) == 20
        assert np.all((selected >= 0) & (selected < 50))

    def test_budget_larger_than_population_returns_everything(self, rng):
        features = rng.normal(size=(10, 4))
        selected = herding_selection(features, 50)
        assert sorted(selected.tolist()) == list(range(10))

    def test_herding_beats_random_subsampling_on_mean_error(self, rng):
        """The iCaRL motivation: herded exemplars approximate the class mean
        with fewer samples than uniform random selection."""
        features = rng.normal(size=(400, 16)) + rng.normal(size=(1, 16)) * 2.0
        budget = 20
        herded = herding_selection(features, budget)
        herded_error = mean_approximation_error(features, herded)
        random_errors = [
            mean_approximation_error(
                features, random_selection(features, budget, rng=np.random.default_rng(seed))
            )
            for seed in range(10)
        ]
        assert herded_error < np.mean(random_errors)

    def test_first_selected_is_closest_to_mean(self, rng):
        features = rng.normal(size=(100, 5))
        normalized = features / np.linalg.norm(features, axis=1, keepdims=True)
        expected_first = int(
            np.argmin(np.linalg.norm(normalized - normalized.mean(axis=0), axis=1))
        )
        assert herding_selection(features, 1)[0] == expected_first

    def test_deterministic(self, rng):
        features = rng.normal(size=(60, 6))
        first = herding_selection(features, 15)
        second = herding_selection(features, 15)
        np.testing.assert_array_equal(first, second)

    def test_without_normalization(self, rng):
        features = rng.normal(size=(30, 4)) * 10
        selected = herding_selection(features, 10, normalize=False)
        assert selected.shape == (10,)

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            herding_selection(rng.normal(size=(0, 3)), 5)
        with pytest.raises(ValueError):
            herding_selection(rng.normal(size=(10, 3)), 0)
        with pytest.raises(ValueError):
            herding_selection(rng.normal(size=10), 3)

    @given(st.integers(1, 30), st.integers(2, 8))
    @settings(max_examples=25, deadline=None)
    def test_selection_size_never_exceeds_population(self, budget, dim):
        features = np.random.default_rng(0).normal(size=(12, dim))
        selected = herding_selection(features, budget)
        assert selected.shape[0] == min(budget, 12)
        assert len(set(selected.tolist())) == selected.shape[0]


class TestRandomSelection:
    def test_returns_unique_indices_within_range(self, rng):
        features = rng.normal(size=(40, 3))
        selected = random_selection(features, 15, rng=rng)
        assert selected.shape == (15,)
        assert len(set(selected.tolist())) == 15

    def test_budget_clipped_to_population(self, rng):
        features = rng.normal(size=(5, 3))
        assert random_selection(features, 100, rng=rng).shape == (5,)

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            random_selection(rng.normal(size=(0, 3)), 2)
        with pytest.raises(ValueError):
            random_selection(rng.normal(size=(5, 3)), 0)
