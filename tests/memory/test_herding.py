"""Tests for the herding exemplar-selection algorithm."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import herding_selection, random_selection


def mean_approximation_error(features: np.ndarray, indices: np.ndarray) -> float:
    normalized = features / np.maximum(np.linalg.norm(features, axis=1, keepdims=True), 1e-12)
    return float(np.linalg.norm(normalized[indices].mean(axis=0) - normalized.mean(axis=0)))


def naive_herding(features: np.ndarray, budget: int, normalize: bool = True) -> np.ndarray:
    """Reference implementation with the per-step (n, d) candidate-means
    temporary, as the seed wrote it; the shipped version replaces it with
    incremental dot-product scores (one GEMV per step) and must keep the
    selection order identical."""
    features = np.asarray(features, dtype=np.float64)
    n = features.shape[0]
    budget = min(budget, n)
    working = features.copy()
    if normalize:
        norms = np.maximum(np.linalg.norm(working, axis=1, keepdims=True), 1e-12)
        working = working / norms
    target_mean = working.mean(axis=0)
    selected: list[int] = []
    selected_mask = np.zeros(n, dtype=bool)
    running_sum = np.zeros_like(target_mean)
    for step in range(1, budget + 1):
        candidate_means = (running_sum[None, :] + working) / step
        distances = np.linalg.norm(candidate_means - target_mean[None, :], axis=1)
        distances[selected_mask] = np.inf
        best = int(np.argmin(distances))
        selected.append(best)
        selected_mask[best] = True
        running_sum += working[best]
    return np.asarray(selected, dtype=np.int64)


class TestHerdingSelection:
    def test_returns_requested_number_of_unique_indices(self, rng):
        features = rng.normal(size=(50, 8))
        selected = herding_selection(features, 20)
        assert selected.shape == (20,)
        assert len(set(selected.tolist())) == 20
        assert np.all((selected >= 0) & (selected < 50))

    def test_budget_larger_than_population_returns_everything(self, rng):
        features = rng.normal(size=(10, 4))
        selected = herding_selection(features, 50)
        assert sorted(selected.tolist()) == list(range(10))

    def test_herding_beats_random_subsampling_on_mean_error(self, rng):
        """The iCaRL motivation: herded exemplars approximate the class mean
        with fewer samples than uniform random selection."""
        features = rng.normal(size=(400, 16)) + rng.normal(size=(1, 16)) * 2.0
        budget = 20
        herded = herding_selection(features, budget)
        herded_error = mean_approximation_error(features, herded)
        random_errors = [
            mean_approximation_error(
                features, random_selection(features, budget, rng=np.random.default_rng(seed))
            )
            for seed in range(10)
        ]
        assert herded_error < np.mean(random_errors)

    def test_first_selected_is_closest_to_mean(self, rng):
        features = rng.normal(size=(100, 5))
        normalized = features / np.linalg.norm(features, axis=1, keepdims=True)
        expected_first = int(
            np.argmin(np.linalg.norm(normalized - normalized.mean(axis=0), axis=1))
        )
        assert herding_selection(features, 1)[0] == expected_first

    def test_deterministic(self, rng):
        features = rng.normal(size=(60, 6))
        first = herding_selection(features, 15)
        second = herding_selection(features, 15)
        np.testing.assert_array_equal(first, second)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("normalize", [True, False])
    def test_selected_indices_match_naive_reference(self, seed, normalize):
        """The GEMV-score rewrite must pick the same exemplars in the same
        order as the candidate-means formulation on seeded data."""
        rng = np.random.default_rng(seed)
        features = rng.normal(size=(180, 12)) + rng.normal(size=(1, 12))
        selected = herding_selection(features, 60, normalize=normalize)
        reference = naive_herding(features, 60, normalize=normalize)
        np.testing.assert_array_equal(selected, reference)

    def test_without_normalization(self, rng):
        features = rng.normal(size=(30, 4)) * 10
        selected = herding_selection(features, 10, normalize=False)
        assert selected.shape == (10,)

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            herding_selection(rng.normal(size=(0, 3)), 5)
        with pytest.raises(ValueError):
            herding_selection(rng.normal(size=(10, 3)), 0)
        with pytest.raises(ValueError):
            herding_selection(rng.normal(size=10), 3)

    @given(st.integers(1, 30), st.integers(2, 8))
    @settings(max_examples=25, deadline=None)
    def test_selection_size_never_exceeds_population(self, budget, dim):
        features = np.random.default_rng(0).normal(size=(12, dim))
        selected = herding_selection(features, budget)
        assert selected.shape[0] == min(budget, 12)
        assert len(set(selected.tolist())) == selected.shape[0]


class TestRandomSelection:
    def test_returns_unique_indices_within_range(self, rng):
        features = rng.normal(size=(40, 3))
        selected = random_selection(features, 15, rng=rng)
        assert selected.shape == (15,)
        assert len(set(selected.tolist())) == 15

    def test_budget_clipped_to_population(self, rng):
        features = rng.normal(size=(5, 3))
        assert random_selection(features, 100, rng=rng).shape == (5,)

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            random_selection(rng.normal(size=(0, 3)), 2)
        with pytest.raises(ValueError):
            random_selection(rng.normal(size=(5, 3)), 0)

    def test_no_rng_fallback_is_deterministic(self, rng):
        # The argless fallback must not draw OS entropy (RPR001): two calls
        # without an rng select the same indices.
        features = rng.normal(size=(40, 3))
        np.testing.assert_array_equal(
            random_selection(features, 10), random_selection(features, 10)
        )
