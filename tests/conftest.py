"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ContinualConfig, ModelConfig
from repro.data import CausalDataset, SyntheticConfig, SyntheticDomainGenerator


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic NumPy random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_synthetic_config() -> SyntheticConfig:
    """Small synthetic-generator configuration used across core tests."""
    return SyntheticConfig(
        n_confounders=6,
        n_instruments=3,
        n_irrelevant=4,
        n_adjustment=6,
        n_units=160,
        domain_mean_shift=1.5,
        outcome_scale=5.0,
    )


@pytest.fixture
def tiny_domains(tiny_synthetic_config) -> tuple:
    """Two small sequential synthetic domains."""
    generator = SyntheticDomainGenerator(tiny_synthetic_config, seed=7)
    return generator.generate_domain(0), generator.generate_domain(1)


@pytest.fixture
def tiny_dataset(tiny_domains) -> CausalDataset:
    """One small synthetic dataset."""
    return tiny_domains[0]


@pytest.fixture
def fast_model_config() -> ModelConfig:
    """Model configuration small/fast enough for unit tests."""
    return ModelConfig(
        representation_dim=8,
        encoder_hidden=(16,),
        outcome_hidden=(8,),
        epochs=4,
        batch_size=64,
        sinkhorn_iterations=10,
        seed=3,
    )


@pytest.fixture
def fast_continual_config() -> ContinualConfig:
    """Continual configuration small/fast enough for unit tests."""
    return ContinualConfig(memory_budget=40, rehearsal_batch_size=32)
