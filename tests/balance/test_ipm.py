"""Tests for the integral probability metrics used for representation balancing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.balance import (
    ipm_distance,
    mmd2_linear,
    mmd2_rbf,
    sinkhorn_wasserstein,
    wasserstein_1d_exact,
)
from repro.nn import Tensor


def make_groups(shift: float, n: int = 60, dim: int = 4, seed: int = 0):
    rng = np.random.default_rng(seed)
    treated = rng.normal(0.0, 1.0, size=(n, dim)) + shift
    control = rng.normal(0.0, 1.0, size=(n, dim))
    return Tensor(treated), Tensor(control)


class TestMMD:
    def test_linear_mmd_zero_for_identical_samples(self):
        treated, _ = make_groups(0.0)
        assert mmd2_linear(treated, treated).item() == pytest.approx(0.0, abs=1e-12)

    def test_linear_mmd_grows_with_shift(self):
        small = mmd2_linear(*make_groups(0.2)).item()
        large = mmd2_linear(*make_groups(2.0)).item()
        assert large > small

    def test_linear_mmd_matches_mean_difference(self):
        treated, control = make_groups(1.0)
        expected = float(np.sum((treated.numpy().mean(0) - control.numpy().mean(0)) ** 2))
        assert mmd2_linear(treated, control).item() == pytest.approx(expected)

    def test_rbf_mmd_nonnegative_and_monotone_in_shift(self):
        values = [mmd2_rbf(*make_groups(s)).item() for s in (0.0, 1.0, 3.0)]
        assert all(v >= -1e-9 for v in values)
        assert values[0] < values[1] < values[2]

    def test_rbf_mmd_invalid_sigma(self):
        treated, control = make_groups(0.5)
        with pytest.raises(ValueError):
            mmd2_rbf(treated, control, sigma=0.0)

    def test_gradients_flow_through_mmd(self):
        rng = np.random.default_rng(3)
        treated = Tensor(rng.normal(size=(10, 3)), requires_grad=True)
        control = Tensor(rng.normal(size=(12, 3)) + 1.0)
        mmd2_linear(treated, control).backward()
        assert treated.grad is not None
        assert np.any(treated.grad != 0)


class TestSinkhornWasserstein:
    def test_identical_samples_much_smaller_than_shifted(self):
        """Entropic OT carries a positive bias, so the self-distance is not exactly
        zero; it must however be far below the distance between shifted groups."""
        treated, control = make_groups(3.0)
        self_distance = sinkhorn_wasserstein(treated, treated, epsilon=0.05).item()
        cross_distance = sinkhorn_wasserstein(treated, control, epsilon=0.05).item()
        assert self_distance < 0.2 * cross_distance

    def test_grows_with_shift(self):
        small = sinkhorn_wasserstein(*make_groups(0.2)).item()
        large = sinkhorn_wasserstein(*make_groups(2.0)).item()
        assert large > small

    def test_approximates_exact_1d_distance(self):
        """With a small epsilon and the non-squared cost, Sinkhorn should be close
        to the exact 1-D Wasserstein distance."""
        rng = np.random.default_rng(7)
        a = rng.normal(0.0, 1.0, size=200)
        b = rng.normal(1.5, 1.0, size=200)
        exact = wasserstein_1d_exact(a, b)
        approx = sinkhorn_wasserstein(
            Tensor(a[:, None]), Tensor(b[:, None]), epsilon=0.01, num_iters=300, squared_cost=False
        ).item()
        assert approx == pytest.approx(exact, rel=0.15)

    def test_gradients_flow_through_cost(self):
        rng = np.random.default_rng(5)
        treated = Tensor(rng.normal(size=(15, 4)), requires_grad=True)
        control = Tensor(rng.normal(size=(20, 4)) + 2.0)
        sinkhorn_wasserstein(treated, control).backward()
        assert treated.grad is not None
        assert np.any(np.abs(treated.grad) > 0)

    def test_gradient_pulls_groups_together(self):
        """A gradient step on the treated group should reduce the distance."""
        rng = np.random.default_rng(9)
        treated_value = rng.normal(size=(30, 3)) + 3.0
        control = Tensor(rng.normal(size=(30, 3)))
        treated = Tensor(treated_value, requires_grad=True)
        loss = sinkhorn_wasserstein(treated, control)
        loss.backward()
        stepped = Tensor(treated_value - 0.5 * treated.grad)
        new_loss = sinkhorn_wasserstein(stepped, control)
        assert new_loss.item() < loss.item()

    def test_invalid_arguments(self):
        treated, control = make_groups(0.5)
        with pytest.raises(ValueError):
            sinkhorn_wasserstein(treated, control, epsilon=0.0)
        with pytest.raises(ValueError):
            sinkhorn_wasserstein(treated, control, num_iters=0)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            sinkhorn_wasserstein(Tensor(np.ones((3, 2))), Tensor(np.ones((3, 5))))

    def test_empty_group_raises(self):
        with pytest.raises(ValueError):
            sinkhorn_wasserstein(Tensor(np.ones((0, 2))), Tensor(np.ones((3, 2))))


class TestExact1D:
    def test_known_value_for_point_masses(self):
        assert wasserstein_1d_exact([0.0], [3.0]) == pytest.approx(3.0)

    def test_symmetry(self):
        rng = np.random.default_rng(11)
        a, b = rng.normal(size=50), rng.normal(size=70) + 1.0
        assert wasserstein_1d_exact(a, b) == pytest.approx(wasserstein_1d_exact(b, a))

    def test_zero_for_identical(self):
        values = np.arange(10.0)
        assert wasserstein_1d_exact(values, values) == pytest.approx(0.0)

    def test_translation_equals_shift(self):
        rng = np.random.default_rng(13)
        a = rng.normal(size=500)
        assert wasserstein_1d_exact(a, a + 2.5) == pytest.approx(2.5, rel=1e-6)

    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            wasserstein_1d_exact([], [1.0])

    @given(st.floats(0.0, 5.0))
    @settings(max_examples=20, deadline=None)
    def test_distance_increases_with_translation(self, shift):
        base = np.linspace(-1, 1, 50)
        assert wasserstein_1d_exact(base, base + shift) == pytest.approx(shift, abs=1e-9)


class TestDispatch:
    def test_ipm_distance_dispatch(self):
        treated, control = make_groups(1.0)
        for kind in ("wasserstein", "mmd_linear", "mmd_rbf"):
            value = ipm_distance(treated, control, kind=kind).item()
            assert value > 0.0

    def test_ipm_distance_unknown_kind(self):
        treated, control = make_groups(1.0)
        with pytest.raises(ValueError):
            ipm_distance(treated, control, kind="total_variation")


class TestSinkhornVectorisedParity:
    """The vectorised in-place Sinkhorn must match the reference bit-for-bit.

    The reference below is the straightforward seed implementation (fresh
    allocations every iteration); the production `_sinkhorn_plan` reuses one
    workspace but keeps the floating-point expression order identical, so the
    plans must be exactly equal — not just close.
    """

    @staticmethod
    def _reference_plan(cost: np.ndarray, epsilon: float, num_iters: int) -> np.ndarray:
        def logsumexp(values, axis):
            maxes = values.max(axis=axis, keepdims=True)
            out = np.log(np.exp(values - maxes).sum(axis=axis, keepdims=True)) + maxes
            return np.squeeze(out, axis=axis)

        n, m = cost.shape
        log_mu = -np.log(n) * np.ones(n)
        log_nu = -np.log(m) * np.ones(m)
        log_k = -cost / epsilon
        f = np.zeros(n)
        g = np.zeros(m)
        for _ in range(num_iters):
            f = epsilon * (log_mu - logsumexp(log_k + g[None, :] / epsilon, axis=1))
            g = epsilon * (log_nu - logsumexp(log_k + f[:, None] / epsilon, axis=0))
        log_plan = log_k + f[:, None] / epsilon + g[None, :] / epsilon
        return np.exp(log_plan)

    @pytest.mark.parametrize("shape", [(64, 64), (31, 47), (3, 128), (1, 5)])
    def test_bitwise_equal_to_reference(self, shape):
        from repro.balance.ipm import _sinkhorn_plan

        rng = np.random.default_rng(42)
        cost = rng.random(shape) * 3.0
        expected = self._reference_plan(cost, epsilon=0.1, num_iters=25)
        actual = _sinkhorn_plan(cost, epsilon=0.1, num_iters=25)
        np.testing.assert_array_equal(actual, expected)

    def test_plan_marginals_are_uniform(self):
        from repro.balance.ipm import _sinkhorn_plan

        rng = np.random.default_rng(7)
        cost = rng.random((40, 60))
        plan = _sinkhorn_plan(cost, epsilon=0.05, num_iters=200)
        np.testing.assert_allclose(plan.sum(axis=1), np.full(40, 1.0 / 40), atol=1e-6)
        np.testing.assert_allclose(plan.sum(axis=0), np.full(60, 1.0 / 60), atol=1e-6)


class TestNdarrayFrontDoorParity:
    """mmd2_*_np must be bit-identical to the Tensor versions (the contract
    that lets the drift monitor skip the autograd substrate entirely)."""

    @pytest.mark.parametrize("shift", [0.0, 0.3, 2.5])
    @pytest.mark.parametrize("shapes", [(60, 60, 4), (33, 47, 7), (2, 9, 1)])
    def test_linear_np_matches_tensor_bitwise(self, shift, shapes):
        from repro.balance import mmd2_linear_np

        n_treated, n_control, dim = shapes
        rng = np.random.default_rng(42)
        treated = rng.normal(0.0, 1.3, size=(n_treated, dim)) + shift
        control = rng.normal(0.0, 0.7, size=(n_control, dim))
        assert mmd2_linear_np(treated, control) == float(
            mmd2_linear(Tensor(treated), Tensor(control)).data
        )

    @pytest.mark.parametrize("sigma", [0.5, 1.0, 4.0])
    @pytest.mark.parametrize("shapes", [(60, 60, 4), (33, 47, 7), (2, 9, 1)])
    def test_rbf_np_matches_tensor_bitwise(self, sigma, shapes):
        from repro.balance import mmd2_rbf_np

        n_treated, n_control, dim = shapes
        rng = np.random.default_rng(43)
        treated = rng.normal(0.0, 1.3, size=(n_treated, dim))
        control = rng.normal(0.5, 0.7, size=(n_control, dim))
        assert mmd2_rbf_np(treated, control, sigma=sigma) == float(
            mmd2_rbf(Tensor(treated), Tensor(control), sigma=sigma).data
        )

    def test_np_front_doors_validate_like_tensor_versions(self):
        from repro.balance import mmd2_linear_np, mmd2_rbf_np

        rng = np.random.default_rng(0)
        good = rng.normal(size=(5, 3))
        with pytest.raises(ValueError, match="2-D"):
            mmd2_linear_np(np.ones(3), good)
        with pytest.raises(ValueError, match="dimensionality"):
            mmd2_linear_np(good, rng.normal(size=(5, 2)))
        with pytest.raises(ValueError, match="at least one unit"):
            mmd2_linear_np(good, np.empty((0, 3)))
        with pytest.raises(ValueError, match="sigma"):
            mmd2_rbf_np(good, good, sigma=0.0)
