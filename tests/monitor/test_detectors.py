"""Tests for the drift statistics and the permutation-calibrated detector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.balance import mmd2_linear, mmd2_rbf, wasserstein_1d_exact
from repro.monitor import DRIFT_STATISTICS, DriftDetector, drift_statistic
from repro.nn import Tensor


@pytest.fixture
def reference(rng):
    return rng.normal(size=(120, 6))


@pytest.fixture
def null_window(rng):
    return rng.normal(size=(40, 6))


@pytest.fixture
def shifted_window(rng):
    return rng.normal(size=(40, 6)) + 2.0


class TestDriftStatistic:
    def test_shifted_window_scores_higher(self, reference, null_window, shifted_window):
        for statistic in DRIFT_STATISTICS:
            near = drift_statistic(reference, null_window, statistic)
            far = drift_statistic(reference, shifted_window, statistic)
            assert far > near, statistic

    def test_unknown_statistic_rejected(self, reference, null_window):
        with pytest.raises(ValueError, match="unknown drift statistic"):
            drift_statistic(reference, null_window, "energy")

    def test_wasserstein_matches_per_feature_exact(self, reference, null_window):
        value = drift_statistic(reference, null_window, "wasserstein_1d")
        per_feature = [
            wasserstein_1d_exact(reference[:, j], null_window[:, j])
            for j in range(reference.shape[1])
        ]
        assert value == float(np.mean(per_feature))


class TestCachedScoreParity:
    """score() reuses reference-side caches; results must stay bit-identical
    to the uncached statistic AND to the Tensor IPM path."""

    @pytest.mark.parametrize("statistic", DRIFT_STATISTICS)
    def test_score_equals_uncached_statistic(self, statistic, reference, shifted_window):
        detector = DriftDetector(statistic, n_permutations=10, seed=0)
        detector.calibrate(reference, window_size=40)
        sigma = detector.bandwidth if statistic == "mmd_rbf" else 1.0
        expected = drift_statistic(reference, shifted_window, statistic, sigma=sigma)
        assert detector.score(shifted_window).statistic == expected

    def test_mmd_scores_equal_tensor_path(self, reference, shifted_window):
        linear = DriftDetector("mmd_linear", n_permutations=5, seed=0)
        linear.calibrate(reference, window_size=40)
        assert linear.score(shifted_window).statistic == float(
            mmd2_linear(Tensor(reference), Tensor(shifted_window)).data
        )
        rbf = DriftDetector("mmd_rbf", n_permutations=5, seed=0)
        rbf.calibrate(reference, window_size=40)
        assert rbf.score(shifted_window).statistic == float(
            mmd2_rbf(Tensor(reference), Tensor(shifted_window), sigma=rbf.bandwidth).data
        )


class TestCalibration:
    def test_same_seed_same_threshold(self, reference):
        first = DriftDetector("mmd_rbf", n_permutations=30, seed=5).calibrate(reference, 40)
        second = DriftDetector("mmd_rbf", n_permutations=30, seed=5).calibrate(reference, 40)
        assert first.threshold == second.threshold
        assert first.bandwidth == second.bandwidth
        np.testing.assert_array_equal(first.null_statistics, second.null_statistics)

    def test_threshold_is_an_achieved_null_value(self, reference):
        detector = DriftDetector("mmd_linear", n_permutations=25, seed=1).calibrate(reference, 40)
        assert detector.threshold in detector.null_statistics

    @pytest.mark.parametrize("statistic", DRIFT_STATISTICS)
    def test_detects_shift_not_null(self, statistic, reference, null_window, shifted_window):
        detector = DriftDetector(
            statistic, quantile=0.95, n_permutations=60, seed=2
        ).calibrate(reference, window_size=40)
        assert detector.score(shifted_window).breach, statistic
        assert not detector.score(null_window).breach, statistic

    def test_small_reference_uses_half_splits(self, rng):
        reference = rng.normal(size=(20, 3))
        detector = DriftDetector("mmd_linear", n_permutations=10, seed=0)
        detector.calibrate(reference, window_size=64)  # window larger than reference
        assert detector.score(rng.normal(size=(64, 3)) + 3.0).breach

    def test_median_bandwidth_tracks_data_scale(self, rng):
        small = DriftDetector("mmd_rbf", n_permutations=5, seed=0)
        small.calibrate(rng.normal(size=(60, 4)), 20)
        large = DriftDetector("mmd_rbf", n_permutations=5, seed=0)
        large.calibrate(rng.normal(size=(60, 4)) * 50.0, 20)
        assert large.bandwidth > 10 * small.bandwidth

    def test_fixed_sigma_is_honoured(self, reference):
        detector = DriftDetector("mmd_rbf", sigma=3.5, n_permutations=5, seed=0)
        detector.calibrate(reference, 40)
        assert detector.bandwidth == 3.5


class TestValidation:
    def test_score_before_calibrate_raises(self, null_window):
        with pytest.raises(RuntimeError, match="calibrate"):
            DriftDetector().score(null_window)

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="unknown drift statistic"):
            DriftDetector("energy")
        with pytest.raises(ValueError, match="sigma"):
            DriftDetector(sigma=0.0)
        with pytest.raises(ValueError, match="sigma"):
            DriftDetector(sigma="auto")
        with pytest.raises(ValueError, match="quantile"):
            DriftDetector(quantile=1.5)
        with pytest.raises(ValueError, match="n_permutations"):
            DriftDetector(n_permutations=0)

    def test_dimension_mismatch_rejected(self, reference, rng):
        detector = DriftDetector("mmd_linear", n_permutations=5).calibrate(reference, 40)
        with pytest.raises(ValueError, match="covariate dimension"):
            detector.score(rng.normal(size=(40, 3)))

    def test_calibrate_validation(self, rng):
        with pytest.raises(ValueError, match="at least four"):
            DriftDetector().calibrate(rng.normal(size=(3, 2)), 2)
        with pytest.raises(ValueError, match="window_size"):
            DriftDetector().calibrate(rng.normal(size=(10, 2)), 1)
