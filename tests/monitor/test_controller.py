"""Tests for the trigger policy and the adapt / hot-swap / rollback transaction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CERL
from repro.data import DomainStream, DriftScenario, SyntheticDomainGenerator
from repro.monitor import (
    AdaptationController,
    DriftDetector,
    TrafficMonitor,
    TriggerPolicy,
)
from repro.serve import ModelRegistry, PredictionService


@pytest.fixture
def generator(tiny_synthetic_config):
    return SyntheticDomainGenerator(tiny_synthetic_config, seed=7)


@pytest.fixture
def scenario(generator):
    return DriftScenario(generator, seed=3)


@pytest.fixture
def loop(generator, scenario, fast_model_config, fast_continual_config, tmp_path):
    """A trained learner saved as v0, plus a warm monitor and calibrated detector."""
    stream = DomainStream([scenario.base_dataset()], seed=0)
    learner = CERL(stream.n_features, fast_model_config, fast_continual_config)
    learner.observe(stream.train_data(0), val_dataset=stream.val_data(0))
    registry = ModelRegistry(tmp_path)
    registry.save("tiny", 0, learner)
    monitor = TrafficMonitor(stream.train_data(0).covariates, window_capacity=24)
    detector = DriftDetector("mmd_rbf", n_permutations=40, seed=0)
    detector.calibrate(monitor.reference, monitor.window_capacity)
    return learner, registry, monitor, detector, scenario


def _drifted_rows(generator, n: int) -> np.ndarray:
    return generator.generate_domain(1, n_units=max(n, 10)).covariates[:n]


def _base_rows(generator, n: int) -> np.ndarray:
    return generator.generate_domain(0, n_units=max(n, 10), repetition=5).covariates[:n]


class TestTriggerPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="consecutive_breaches"):
            TriggerPolicy(consecutive_breaches=0)
        with pytest.raises(ValueError, match="cooldown_checks"):
            TriggerPolicy(cooldown_checks=-1)

    def test_warming_then_none_then_breach_then_adapt(self, loop, generator):
        learner, registry, monitor, detector, scenario = loop
        controller = AdaptationController(
            learner,
            monitor,
            detector,
            registry,
            "tiny",
            labeler=scenario.make_labeler(),
            policy=TriggerPolicy(consecutive_breaches=2, cooldown_checks=1),
            regression_tolerance=100.0,  # always accept: this test is about the trigger
            seed=0,
        )
        assert controller.check().action == "warming"  # window empty

        monitor.observe(_base_rows(generator, 24))
        assert controller.check().action == "none"  # stationary traffic

        monitor.observe(_drifted_rows(generator, 24))
        first = controller.check()
        assert first.action == "breach" and first.consecutive == 1  # not confirmed yet

        monitor.observe(_drifted_rows(generator, 24))
        second = controller.check()
        assert second.action == "adapted" and second.consecutive == 2

        # Cooldown: the next check is skipped even though traffic keeps flowing.
        monitor.observe(_drifted_rows(generator, 24))
        assert controller.check().action == "cooldown"

    def test_non_consecutive_breaches_do_not_trigger(self, loop, generator):
        learner, registry, monitor, detector, scenario = loop
        controller = AdaptationController(
            learner,
            monitor,
            detector,
            registry,
            "tiny",
            labeler=scenario.make_labeler(),
            policy=TriggerPolicy(consecutive_breaches=2, cooldown_checks=0),
            seed=0,
        )
        monitor.observe(_drifted_rows(generator, 24))
        assert controller.check().action == "breach"
        monitor.observe(_base_rows(generator, 24))  # back to stationary
        assert controller.check().action == "none"
        monitor.observe(_drifted_rows(generator, 24))
        assert controller.check().action == "breach"  # counter restarted
        assert controller.events == []


class TestAdaptationTransaction:
    def test_accepted_adaptation_versions_swaps_and_rebases(self, loop, generator):
        learner, registry, monitor, detector, scenario = loop
        old_reference = monitor.reference.copy()
        old_threshold = detector.threshold
        with PredictionService.from_registry(registry, "tiny", max_batch=8) as service:
            controller = AdaptationController(
                learner,
                monitor,
                detector,
                registry,
                "tiny",
                labeler=scenario.make_labeler(),
                service=service,
                policy=TriggerPolicy(consecutive_breaches=1, cooldown_checks=0),
                regression_tolerance=100.0,
                seed=0,
            )
            monitor.observe(_drifted_rows(generator, 24))
            check = controller.check()
            assert check.action == "adapted"
            assert service.model_version == 1  # hot-swapped

        assert registry.list_versions("tiny") == [0, 1]
        assert registry.head_version("tiny") == 1
        entry = registry.entry("tiny", 1)
        assert entry.metadata["trigger"] == "drift"
        assert entry.domains_seen == 2  # one continual stage ran

        event = controller.events[0]
        assert event.accepted and event.previous_version == 0 and event.new_version == 1
        # The monitor now measures drift against the adapted-to domain…
        assert not np.array_equal(monitor.reference, old_reference)
        assert not monitor.is_warm  # …with a cleared window…
        assert detector.threshold != old_threshold  # …and a recalibrated detector.

        # The saved version serves exactly what the live learner predicts.
        probe = _drifted_rows(generator, 12)
        np.testing.assert_array_equal(
            registry.load("tiny", 1).predict(probe).ite_hat,
            controller.learner.predict(probe).ite_hat,
        )

    def test_regressing_adaptation_rolls_back(self, loop, generator):
        learner, registry, monitor, detector, scenario = loop
        probe = _drifted_rows(generator, 12)
        before = learner.predict(probe).ite_hat.copy()
        # Share the learner object with the service — the harshest wiring:
        # the rejected adaptation mutates it in place, so rollback must also
        # swap the service back to the checkpointed state.
        with PredictionService(learner, model_version=0, max_batch=8) as service:
            controller = AdaptationController(
                learner,
                monitor,
                detector,
                registry,
                "tiny",
                labeler=scenario.make_labeler(),
                service=service,
                policy=TriggerPolicy(consecutive_breaches=1, cooldown_checks=1),
                regression_tolerance=-1.0,  # accept only if RMSE <= 0: impossible
                seed=0,
            )
            monitor.observe(_drifted_rows(generator, 24))
            check = controller.check()
            assert check.action == "rolled_back"
            assert service.model_version == 0
            # The service no longer answers with the mutated learner.
            np.testing.assert_array_equal(service.predict(probe).ite_hat, before)

        assert registry.list_versions("tiny") == [0]  # nothing new saved
        assert registry.head_version("tiny") == 0
        event = controller.events[0]
        assert not event.accepted and event.new_version == 0
        # The controller's learner is the restored v0 checkpoint, bit for bit —
        # not the mutated post-observe learner.
        assert controller.learner is not learner
        np.testing.assert_array_equal(controller.learner.predict(probe).ite_hat, before)
        # The drained window stays drained; cooldown prevents an immediate retry.
        assert controller.check().action == "cooldown"
        assert controller.check().action == "warming"

    def test_requires_bootstrapped_registry(self, loop, scenario, tmp_path):
        learner, _, monitor, detector, _ = loop
        empty = ModelRegistry(tmp_path / "empty")
        with pytest.raises(FileNotFoundError, match="no checkpoints"):
            AdaptationController(
                learner, monitor, detector, empty, "tiny", labeler=scenario.make_labeler()
            )

    def test_labeler_row_count_enforced(self, loop, generator):
        learner, registry, monitor, detector, scenario = loop
        controller = AdaptationController(
            learner,
            monitor,
            detector,
            registry,
            "tiny",
            labeler=lambda covariates: scenario.label(covariates[:-1], key=0),
            policy=TriggerPolicy(consecutive_breaches=1, cooldown_checks=0),
            seed=0,
        )
        monitor.observe(_drifted_rows(generator, 24))
        with pytest.raises(ValueError, match="labeler returned"):
            controller.check()

    def test_val_fraction_validation(self, loop, scenario):
        learner, registry, monitor, detector, _ = loop
        with pytest.raises(ValueError, match="val_fraction"):
            AdaptationController(
                learner,
                monitor,
                detector,
                registry,
                "tiny",
                labeler=scenario.make_labeler(),
                val_fraction=1.0,
            )

    def test_window_too_small_to_adapt_rejected_up_front(self, loop, scenario):
        """The adaptation transaction must never crash after the registry
        save and hot-swap have committed: impossible window geometries
        (training split below the detector's calibration minimum) are
        rejected at construction."""
        learner, registry, _, detector, _ = loop
        tiny_monitor = TrafficMonitor(learner_reference(learner), window_capacity=4)
        with pytest.raises(ValueError, match="at least\\s+4"):
            AdaptationController(
                learner,
                tiny_monitor,
                detector,
                registry,
                "tiny",
                labeler=scenario.make_labeler(),
            )


def learner_reference(learner) -> np.ndarray:
    """Any plausible reference matrix matching the learner's feature count."""
    return np.random.default_rng(0).normal(size=(32, learner.n_features))
