"""Deterministic replay of the end-to-end auto-adaptation loop.

The acceptance criterion of the monitoring subsystem: replaying the same
seeded traffic tape yields identical detection points, identical registry
versions, and bit-identical post-adaptation predictions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import DriftConfig
from repro.experiments import SMOKE, run_auto_adaptation

_FAST = dict(
    profile=SMOKE,
    n_ticks=8,
    rows_per_tick=16,
    drift_at=3,
    epochs=2,
    n_permutations=25,
    seed=11,
)


@pytest.fixture(scope="module")
def covariate_runs(tmp_path_factory):
    """The same abrupt covariate-shift tape, run twice into fresh registries."""
    runs = []
    for replay in range(2):
        runs.append(
            run_auto_adaptation(
                drift=DriftConfig(kind="covariate", mode="abrupt"),
                registry_root=tmp_path_factory.mktemp(f"replay{replay}"),
                **_FAST,
            )
        )
    return runs


class TestDeterministicReplay:
    def test_same_detection_epochs(self, covariate_runs):
        first, second = covariate_runs
        assert first.detection_ticks  # the injected shift was detected at all
        assert first.detection_ticks == second.detection_ticks
        assert [t.check.action for t in first.ticks] == [
            t.check.action for t in second.ticks
        ]

    def test_same_statistics_and_thresholds(self, covariate_runs):
        first, second = covariate_runs
        for a, b in zip(first.ticks, second.ticks):
            assert a.check.threshold == b.check.threshold
            assert (
                a.check.statistic == b.check.statistic
                or (np.isnan(a.check.statistic) and np.isnan(b.check.statistic))
            )

    def test_same_registry_versions(self, covariate_runs):
        first, second = covariate_runs
        assert first.registry_versions == second.registry_versions
        assert first.head_version == second.head_version
        assert [t.served_version for t in first.ticks] == [
            t.served_version for t in second.ticks
        ]

    def test_bit_identical_post_adaptation_predictions(self, covariate_runs):
        first, second = covariate_runs
        assert first.head_version > 0  # the loop actually adapted
        np.testing.assert_array_equal(first.final_predictions, second.final_predictions)

    def test_same_adaptation_events(self, covariate_runs):
        first, second = covariate_runs
        assert first.events == second.events
        assert all(event.accepted for event in first.events)


class TestScenarioGrid:
    def test_gradual_covariate_shift_is_detected(self, tmp_path):
        result = run_auto_adaptation(
            drift=DriftConfig(kind="covariate", mode="gradual", ramp_ticks=3),
            registry_root=tmp_path,
            **_FAST,
        )
        assert result.detection_ticks
        # Gradual onset cannot confirm before the abrupt scenario would.
        assert result.detection_ticks[0] >= _FAST["drift_at"] + 1

    def test_concept_shift_is_invisible_to_covariate_detectors(self, tmp_path):
        """Concept drift changes tau, not X — the documented blind spot of
        covariate-window monitoring must hold (and stay deterministic)."""
        result = run_auto_adaptation(
            drift=DriftConfig(kind="concept", mode="abrupt"),
            registry_root=tmp_path,
            **_FAST,
        )
        assert result.detection_ticks == []
        assert result.registry_versions == [0]
        assert result.head_version == 0

    def test_no_drift_means_no_adaptation(self, tmp_path):
        result = run_auto_adaptation(
            drift=DriftConfig(kind="covariate", magnitude=0.0),
            registry_root=tmp_path,
            **_FAST,
        )
        assert result.detection_ticks == []
        assert result.registry_versions == [0]

    def test_service_saw_every_tape_row(self, covariate_runs):
        stats = covariate_runs[0].service_stats
        assert stats.queries == _FAST["n_ticks"] * _FAST["rows_per_tick"]


class TestEstimatorGenericAdaptation:
    def test_r_learner_is_hot_swapped_on_drift(self, tmp_path):
        """The adaptation loop versions and promotes any registered estimator.

        No monitor or serve code knows what an R-learner is; the controller
        retrains it through the registry factory and hot-swaps the service
        head exactly as it does for CERL.
        """
        result = run_auto_adaptation(
            estimator="R-learner",
            drift=DriftConfig(kind="covariate", mode="abrupt"),
            registry_root=tmp_path,
            **_FAST,
        )
        assert result.detection_ticks
        assert result.head_version > 0  # an R-learner checkpoint was promoted
        assert result.registry_versions == sorted(result.registry_versions)
        assert np.all(np.isfinite(result.final_predictions))
