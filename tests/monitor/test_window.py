"""Tests for the rolling traffic window and the service-tapping monitor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.monitor import RollingWindow, TrafficMonitor


class TestRollingWindow:
    def test_fills_in_arrival_order(self):
        window = RollingWindow(capacity=4, n_features=2)
        assert len(window) == 0 and not window.is_full
        window.extend(np.array([[1.0, 1.0], [2.0, 2.0]]))
        np.testing.assert_array_equal(window.values(), [[1.0, 1.0], [2.0, 2.0]])
        assert window.total_seen == 2

    def test_wraps_and_keeps_most_recent(self):
        window = RollingWindow(capacity=3, n_features=1)
        for value in range(5):
            window.extend(np.array([[float(value)]]))
        assert window.is_full
        np.testing.assert_array_equal(window.values().ravel(), [2.0, 3.0, 4.0])
        assert window.total_seen == 5

    def test_block_larger_than_capacity_keeps_trailing_rows(self):
        window = RollingWindow(capacity=3, n_features=1)
        window.extend(np.arange(10.0).reshape(-1, 1))
        np.testing.assert_array_equal(window.values().ravel(), [7.0, 8.0, 9.0])

    def test_block_extend_wraps_mid_buffer(self):
        window = RollingWindow(capacity=4, n_features=1)
        window.extend(np.arange(3.0).reshape(-1, 1))
        window.extend(np.array([[3.0], [4.0]]))  # wraps after one slot
        np.testing.assert_array_equal(window.values().ravel(), [1.0, 2.0, 3.0, 4.0])

    def test_values_are_copies(self):
        window = RollingWindow(capacity=2, n_features=1)
        window.extend(np.array([[1.0], [2.0]]))
        snapshot = window.values()
        snapshot[:] = -1.0
        np.testing.assert_array_equal(window.values().ravel(), [1.0, 2.0])

    def test_clear_keeps_total_seen(self):
        window = RollingWindow(capacity=2, n_features=1)
        window.extend(np.array([[1.0], [2.0]]))
        window.clear()
        assert len(window) == 0
        assert window.total_seen == 2

    def test_rejects_bad_shapes_and_sizes(self):
        with pytest.raises(ValueError, match="capacity"):
            RollingWindow(capacity=0, n_features=1)
        window = RollingWindow(capacity=2, n_features=3)
        with pytest.raises(ValueError, match="shape"):
            window.extend(np.ones((2, 2)))


class _FakeService:
    """Just the observer registry of a PredictionService."""

    def __init__(self) -> None:
        self.observers = []

    def add_observer(self, observer):
        self.observers.append(observer)

    def remove_observer(self, observer):
        self.observers.remove(observer)


class TestTrafficMonitor:
    def test_observe_accepts_rows_and_blocks(self, rng):
        reference = rng.normal(size=(20, 3))
        monitor = TrafficMonitor(reference, window_capacity=4)
        monitor.observe(np.ones(3))  # single row
        monitor.observe(np.zeros((2, 3)))  # block
        assert monitor.rows_seen == 3
        assert not monitor.is_warm
        monitor.observe(np.full((5, 3), 2.0))
        assert monitor.is_warm
        assert monitor.window_values().shape == (4, 3)

    def test_reference_is_frozen_copy(self, rng):
        source = rng.normal(size=(10, 2))
        monitor = TrafficMonitor(source)
        source[:] = 0.0
        assert not np.array_equal(monitor.reference, source)
        with pytest.raises(ValueError):
            monitor.reference[0, 0] = 1.0  # read-only

    def test_default_window_is_half_the_reference(self, rng):
        monitor = TrafficMonitor(rng.normal(size=(30, 2)))
        assert monitor.window_capacity == 15

    def test_attach_detach_round_trip(self, rng):
        monitor = TrafficMonitor(rng.normal(size=(10, 2)), window_capacity=4)
        service = _FakeService()
        monitor.attach(service)
        service.observers[0](np.ones((2, 2)))
        assert monitor.rows_seen == 2
        monitor.detach(service)
        assert service.observers == []

    def test_drain_returns_and_clears(self, rng):
        monitor = TrafficMonitor(rng.normal(size=(10, 2)), window_capacity=3)
        monitor.observe(np.arange(6.0).reshape(3, 2))
        drained = monitor.drain()
        np.testing.assert_array_equal(drained, np.arange(6.0).reshape(3, 2))
        assert monitor.window_values().shape == (0, 2)

    def test_rebase_replaces_reference_and_clears_window(self, rng):
        monitor = TrafficMonitor(rng.normal(size=(10, 2)), window_capacity=4)
        monitor.observe(np.ones((4, 2)))
        new_reference = rng.normal(size=(8, 2))
        monitor.rebase(new_reference)
        np.testing.assert_array_equal(monitor.reference, new_reference)
        assert not monitor.is_warm
        assert monitor.window_capacity == 4
        with pytest.raises(ValueError, match="shape"):
            monitor.rebase(rng.normal(size=(8, 5)))

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="2-D"):
            TrafficMonitor(np.ones(5))
        with pytest.raises(ValueError, match="window_capacity"):
            TrafficMonitor(rng.normal(size=(10, 2)), window_capacity=1)


class TestWindowCapacityLocking:
    def test_window_capacity_reads_under_the_lock(self, rng):
        # Regression: window_capacity used to read the (lock-guarded)
        # rolling window without taking _lock, racing rebase()'s window swap.
        monitor = TrafficMonitor(rng.normal(size=(10, 2)), window_capacity=4)
        acquired = []

        class RecordingLock:
            def __enter__(self):
                acquired.append(True)

            def __exit__(self, *exc):
                return False

        monitor._lock = RecordingLock()
        assert monitor.window_capacity == 4
        assert acquired
