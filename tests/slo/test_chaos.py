"""Tests for fault schedules and the fleet chaos ops adapter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.fleet import RemoteError
from repro.slo import (
    FAULT_KINDS,
    FaultSchedule,
    FleetChaosOps,
    RegistryOutageFault,
    StragglerFault,
    WorkerKillFault,
    default_fault_schedule,
)


class VirtualClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += seconds


class TestSchedule:
    def test_faults_sort_by_tick(self):
        schedule = FaultSchedule(
            [
                StragglerFault(stream="a", at_tick=50, delay_ms=10.0),
                WorkerKillFault(stream="a", at_tick=10),
            ]
        )
        assert [fault.at_tick for fault in schedule] == [10, 50]

    def test_events_interleave_inject_before_clear(self):
        schedule = FaultSchedule(
            [
                WorkerKillFault(stream="a", at_tick=10, duration_ticks=30),
                StragglerFault(stream="a", at_tick=20, delay_ms=5.0, duration_ticks=5),
            ]
        )
        assert [(tick, action) for tick, action, _ in schedule.events()] == [
            (10, "inject"),
            (20, "inject"),
            (25, "clear"),
            (40, "clear"),
        ]

    def test_default_schedule_covers_every_fault_kind(self):
        schedule = default_fault_schedule(200, "victim")
        assert sorted(fault.kind for fault in schedule) == sorted(FAULT_KINDS)
        assert all(fault.clear_tick < 200 for fault in schedule)
        assert len({fault.at_tick for fault in schedule}) == 3

    def test_default_schedule_needs_enough_tape(self):
        with pytest.raises(ValueError, match="20 ticks"):
            default_fault_schedule(10, "victim")

    def test_fault_validation(self):
        with pytest.raises(ValueError, match="at_tick"):
            WorkerKillFault(stream="a", at_tick=-1)
        with pytest.raises(ValueError, match="duration_ticks"):
            WorkerKillFault(stream="a", at_tick=0, duration_ticks=0)
        with pytest.raises(ValueError, match="delay_ms"):
            StragglerFault(stream="a", at_tick=0, delay_ms=0.0)


class FakeGateway:
    """Worker bookkeeping + scripted reload/predict outcomes for ops tests."""

    def __init__(self) -> None:
        self.killed = []
        self.restarted = []
        self.delays = {}
        self.reload_error: BaseException | None = None
        self.predict_latency_s = 0.0
        self.predict_error: BaseException | None = None

    def worker_for(self, stream):
        return 1

    def kill_worker(self, index):
        self.killed.append(index)

    def restart_worker(self, index):
        self.restarted.append(index)
        return 5000 + index

    def set_worker_delay(self, index, delay_ms):
        self.delays[index] = delay_ms

    def reload(self, stream):
        if self.reload_error is not None:
            raise self.reload_error
        return 0

    def predict_one(self, stream, row, timeout=None):
        if self.predict_error is not None:
            raise self.predict_error
        return object()


def make_ops(gateway, tmp_path, clock=None, **kwargs):
    clock = clock if clock is not None else VirtualClock()
    return FleetChaosOps(
        gateway,
        tmp_path,
        probe_rows={"s": np.zeros(4)},
        clock=clock,
        sleep=clock.sleep,
        **kwargs,
    )


class TestFleetChaosOps:
    def test_worker_faults_route_to_the_streams_worker(self, tmp_path):
        gateway = FakeGateway()
        ops = make_ops(gateway, tmp_path)
        assert WorkerKillFault(stream="s", at_tick=0).inject(ops) == {"worker": 1}
        assert gateway.killed == [1]
        details = WorkerKillFault(stream="s", at_tick=0).clear(ops)
        assert details == {"worker": 1, "port": 5001}
        StragglerFault(stream="s", at_tick=0, delay_ms=25.0).inject(ops)
        assert gateway.delays == {1: 25.0}
        StragglerFault(stream="s", at_tick=0, delay_ms=25.0).clear(ops)
        assert gateway.delays == {1: 0.0}

    def test_registry_outage_hides_and_restores_the_manifest(self, tmp_path):
        manifest = tmp_path / "s" / "manifest.json"
        manifest.parent.mkdir()
        manifest.write_text("{}")
        gateway = FakeGateway()
        ops = make_ops(gateway, tmp_path)

        gateway.reload_error = RemoteError("FileNotFoundError", "no manifest")
        details = RegistryOutageFault(stream="s", at_tick=0).inject(ops)
        assert not manifest.exists(), "manifest must be hidden during the outage"
        assert details == {"reload_failed_typed": True}

        gateway.reload_error = None
        details = RegistryOutageFault(stream="s", at_tick=0).clear(ops)
        assert manifest.exists(), "manifest must be restored after the outage"
        assert details == {"reloaded_version": 0}

    def test_untyped_reload_failure_is_not_reported_as_typed(self, tmp_path):
        manifest = tmp_path / "s" / "manifest.json"
        manifest.parent.mkdir()
        manifest.write_text("{}")
        gateway = FakeGateway()
        gateway.reload_error = RuntimeError("untyped crash")
        ops = make_ops(gateway, tmp_path)
        details = RegistryOutageFault(stream="s", at_tick=0).inject(ops)
        assert details == {"reload_failed_typed": False}

    def test_hide_without_manifest_is_an_error(self, tmp_path):
        ops = make_ops(FakeGateway(), tmp_path)
        with pytest.raises(FileNotFoundError, match="manifest"):
            ops.hide_registry("s")

    def test_probe_recovery_measures_time_to_consecutive_successes(self, tmp_path):
        clock = VirtualClock()
        ops = make_ops(
            FakeGateway(), tmp_path, clock=clock, consecutive_ok=3,
            probe_interval_s=0.1,
        )
        recovery_s, probes = ops.probe_recovery(
            "s", latency_budget_s=1.0, recovery_budget_s=60.0
        )
        assert probes == 3
        assert recovery_s is not None and recovery_s < 1.0

    def test_probe_recovery_restarts_the_streak_after_a_failure(self, tmp_path):
        clock = VirtualClock()
        gateway = FakeGateway()
        ops = make_ops(
            gateway, tmp_path, clock=clock, consecutive_ok=2, probe_interval_s=0.1
        )
        calls = [0]
        original = gateway.predict_one

        def flaky(stream, row, timeout=None):
            calls[0] += 1
            if calls[0] <= 2:
                raise RemoteError("boom", "still down")
            return original(stream, row, timeout)

        gateway.predict_one = flaky
        recovery_s, probes = ops.probe_recovery(
            "s", latency_budget_s=1.0, recovery_budget_s=60.0
        )
        assert probes == 4  # two failures, then two consecutive successes
        assert recovery_s is not None

    def test_probe_recovery_gives_up_at_the_budget(self, tmp_path):
        clock = VirtualClock()
        gateway = FakeGateway()
        gateway.predict_error = RemoteError("boom", "never recovers")
        ops = make_ops(
            gateway, tmp_path, clock=clock, consecutive_ok=2, probe_interval_s=0.5
        )
        recovery_s, probes = ops.probe_recovery(
            "s", latency_budget_s=1.0, recovery_budget_s=3.0
        )
        assert recovery_s is None
        assert probes > 0
