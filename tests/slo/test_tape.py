"""Tests for the traffic tape: replay determinism and production shape.

The load-bearing property is **replayability**: two iterations of the same
tape — and the chunk row streams and fault schedules keyed off it — must be
identical, or the SLO harness's bitwise verification and recovery
measurements stop meaning anything.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.streams import ChunkedPopulation
from repro.data.synthetic import SyntheticDomainGenerator, SyntheticConfig
from repro.slo import TapeConfig, TrafficTape, default_fault_schedule


def small_tape(seed: int = 7, **overrides) -> TrafficTape:
    config = dict(n_ticks=120, mean_rows_per_tick=16)
    config.update(overrides)
    return TrafficTape(["hot", "warm", "cold"], TapeConfig(**config), seed=seed)


class TestReplayDeterminism:
    def test_two_iterations_yield_identical_schedules(self):
        tape = small_tape()
        assert tape.schedule() == tape.schedule()

    def test_two_instances_yield_identical_schedules(self):
        assert small_tape().schedule() == small_tape().schedule()
        assert small_tape().fingerprint() == small_tape().fingerprint()

    def test_seed_changes_the_schedule(self):
        assert small_tape(seed=7).fingerprint() != small_tape(seed=8).fingerprint()

    def test_per_tenant_row_streams_replay_identically(self):
        """A tick's chunk key must resolve to the same rows on every replay."""
        generator = SyntheticDomainGenerator(
            SyntheticConfig(
                n_confounders=2,
                n_instruments=1,
                n_irrelevant=1,
                n_adjustment=2,
                n_units=50,
            ),
            seed=3,
        )
        source = ChunkedPopulation(
            lambda key, rows: generator.generate_domain(
                0, n_units=rows, repetition=1 + key
            ),
            min_rows=10,
        )
        tape = small_tape()
        for tick in list(tape.ticks())[:10]:
            first = source.rows_for(tick.chunk_key, tick.rows)
            again = source.rows_for(tick.chunk_key, tick.rows)
            assert first.shape == (tick.rows, 6)
            np.testing.assert_array_equal(first, again)

    def test_fault_schedule_fires_at_identical_ticks(self):
        tape = small_tape()
        first = default_fault_schedule(len(tape), "hot")
        second = default_fault_schedule(len(tape), "hot")
        assert first.fault_ticks() == second.fault_ticks()
        # inject strictly before the matching clear, for every fault
        actions = {}
        for tick, action, kind in first.fault_ticks():
            actions.setdefault(kind, []).append((tick, action))
        for kind, events in actions.items():
            assert [a for _, a in events] == ["inject", "clear"], kind
            assert events[0][0] < events[1][0], kind


class TestProductionShape:
    def test_hot_key_skew_orders_tenant_volume(self):
        schedule = small_tape(seed=11, n_ticks=1000).schedule()
        ticks = {name: 0 for name in ("hot", "warm", "cold")}
        for tick in schedule:
            ticks[tick.tenant] += 1
        assert ticks["hot"] > ticks["warm"] > ticks["cold"], ticks

    def test_zero_skew_is_roughly_uniform(self):
        rows = small_tape(seed=11, hot_key_skew=0.0, n_ticks=600).tenant_rows()
        counts = sorted(rows.values())
        assert counts[0] > 0 and counts[-1] < 3 * counts[0], rows

    def test_burst_windows_and_quiet_ticks_both_occur(self):
        schedule = small_tape().schedule()
        assert any(tick.burst for tick in schedule)
        assert any(not tick.burst for tick in schedule)

    def test_burst_ticks_are_denser_and_heavier_on_average(self):
        schedule = small_tape(seed=1, n_ticks=400).schedule()
        burst_rows = np.mean([t.rows for t in schedule if t.burst])
        quiet_rows = np.mean([t.rows for t in schedule if not t.burst])
        assert burst_rows > quiet_rows

    def test_rows_are_clipped_to_the_payload_budget(self):
        schedule = small_tape(seed=2, max_rows_per_tick=40).schedule()
        assert all(1 <= tick.rows <= 40 for tick in schedule)

    def test_arrival_times_are_monotone(self):
        schedule = small_tape().schedule()
        offsets = [tick.at_s for tick in schedule]
        assert all(b >= a for a, b in zip(offsets, offsets[1:]))

    def test_total_rows_matches_schedule(self):
        tape = small_tape()
        assert tape.total_rows() == sum(t.rows for t in tape.schedule())


class TestValidation:
    def test_tail_shape_must_exceed_one(self):
        with pytest.raises(ValueError, match="tail_shape"):
            TapeConfig(tail_shape=1.0)

    def test_tenants_must_be_unique_and_nonempty(self):
        with pytest.raises(ValueError, match="unique"):
            TrafficTape(["a", "a"], TapeConfig())
        with pytest.raises(ValueError, match="tenant"):
            TrafficTape([], TapeConfig())

    def test_diurnal_amplitude_below_one(self):
        with pytest.raises(ValueError, match="diurnal_amplitude"):
            TapeConfig(diurnal_amplitude=1.0)
