"""Tests for the load runner: taxonomy, determinism, pacing, fault wiring."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np
import pytest

from repro.serve.fleet import (
    QuotaExceeded,
    RateLimited,
    RemoteError,
    WorkerUnavailable,
)
from repro.serve.gateway import Overloaded
from repro.slo import Fault, FaultSchedule, LoadRunner, SloTargets, TapeConfig, TrafficTape


class StubPrediction:
    def __init__(self, row: np.ndarray) -> None:
        self.mu0 = float(row.sum())
        self.mu1 = float(row.sum() * 2.0)
        self.ite = self.mu1 - self.mu0
        self.model_version = 0


class StubGateway:
    """Answers deterministically; raises a scripted error for some tenants."""

    def __init__(self, errors: Optional[Dict[str, BaseException]] = None) -> None:
        self.errors = errors or {}
        self.calls = 0

    def predict_one(self, stream, row, timeout=None):
        self.calls += 1
        error = self.errors.get(stream)
        if error is not None:
            raise error
        return StubPrediction(row)


class VirtualClock:
    """Injected monotonic clock: sleeping advances it, reading never does."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += seconds


def rows(key: int, count: int) -> np.ndarray:
    rng = np.random.default_rng([13, 37, key])
    return rng.normal(size=(count, 4))


def tape(tenants, n_ticks=30, seed=0) -> TrafficTape:
    return TrafficTape(
        tenants, TapeConfig(n_ticks=n_ticks, mean_rows_per_tick=4), seed=seed
    )


class TestTaxonomy:
    def test_classify_covers_every_typed_error(self):
        cases = {
            "overloaded": Overloaded("s", 0, 4, 4),
            "rate_limited": RateLimited("s", 10.0, 0.25),
            "quota": QuotaExceeded("s", 100, 100),
            "worker_unavailable": WorkerUnavailable(1, "dead socket"),
            "remote_error": RemoteError("ValueError", "boom"),
            "timeout": TimeoutError("slow"),
            "error": RuntimeError("anything else"),
        }
        for bucket, error in cases.items():
            assert LoadRunner.classify(error) == bucket

    def test_shed_errors_are_read_through_one_field_not_special_cased(self):
        """Overloaded (hint None) and RateLimited (hint set) go through the
        identical ``retry_after_s`` read — only real hints are counted."""
        t = tape(["ok", "shed", "limited"], n_ticks=40)
        gateway = StubGateway(
            errors={
                "shed": Overloaded("shed", 0, 4, 4),
                "limited": RateLimited("limited", 10.0, 0.25),
            }
        )
        report = LoadRunner(
            gateway, t, {name: rows for name in t.tenants}, n_clients=2
        ).run()
        taxonomy = report.taxonomy
        assert taxonomy["overloaded"] > 0 and taxonomy["rate_limited"] > 0
        assert report.retry_hints == taxonomy["rate_limited"]
        assert report.shed == taxonomy["overloaded"] + taxonomy["rate_limited"]
        assert report.queries == t.total_rows()
        assert report.ok == taxonomy["ok"] > 0

    def test_untyped_errors_count_as_failures_not_shed(self):
        t = tape(["ok", "broken"])
        gateway = StubGateway(errors={"broken": RuntimeError("boom")})
        report = LoadRunner(gateway, t, {name: rows for name in t.tenants}).run()
        assert report.failed == report.taxonomy["error"] > 0
        assert report.shed_rate == 0.0


class TestDeterminism:
    def test_sampled_responses_are_bitwise_identical_across_replays(self):
        t = tape(["a", "b"], n_ticks=25)

        def run():
            return LoadRunner(
                StubGateway(),
                t,
                {name: rows for name in t.tenants},
                n_clients=3,
                sample_per_tick=2,
                sample_seed=17,
            ).run()

        first, second = run(), run()
        assert first.samples and set(first.samples) == set(second.samples)
        assert first.samples == second.samples  # bitwise tuple equality

    def test_sample_positions_depend_only_on_seed_and_tick(self):
        t = tape(["a"], n_ticks=10)
        kwargs = dict(n_clients=1, sample_per_tick=1)
        base = LoadRunner(
            StubGateway(), t, {"a": rows}, sample_seed=1, **kwargs
        ).run()
        reseeded = LoadRunner(
            StubGateway(), t, {"a": rows}, sample_seed=2, **kwargs
        ).run()
        assert set(base.samples) != set(reseeded.samples)

    def test_per_tenant_counts_match_the_tape(self):
        t = tape(["a", "b"], n_ticks=40)
        report = LoadRunner(StubGateway(), t, {name: rows for name in t.tenants}).run()
        assert report.per_tenant == t.tenant_rows()


class TestPacing:
    def test_paced_replay_honours_the_tape_timeline_on_the_injected_clock(self):
        clock = VirtualClock()
        t = tape(["a"], n_ticks=15)
        last_at = t.schedule()[-1].at_s
        report = LoadRunner(
            StubGateway(),
            t,
            {"a": rows},
            n_clients=1,
            clock=clock,
            sleep=clock.sleep,
            pace=True,
        ).run()
        assert report.elapsed_s >= last_at

    def test_time_scale_compresses_the_timeline(self):
        clock = VirtualClock()
        t = tape(["a"], n_ticks=15)
        last_at = t.schedule()[-1].at_s
        report = LoadRunner(
            StubGateway(),
            t,
            {"a": rows},
            n_clients=1,
            clock=clock,
            sleep=clock.sleep,
            pace=True,
            time_scale=10.0,
        ).run()
        assert report.elapsed_s >= last_at / 10.0
        assert report.elapsed_s < last_at


@dataclass(frozen=True)
class RecordingFault(Fault):
    kind: str = "recording"

    def inject(self, ops):
        ops.injected.append(self.stream)
        return {"injected": True}

    def clear(self, ops):
        ops.cleared.append(self.stream)
        return {"cleared": True}


class RecordingOps:
    def __init__(self) -> None:
        self.injected = []
        self.cleared = []
        self.probed = []

    def probe_recovery(self, stream, latency_budget_s, recovery_budget_s):
        self.probed.append((stream, latency_budget_s, recovery_budget_s))
        return 0.5, 3


class TestFaultWiring:
    def test_faults_fire_once_and_recovery_is_measured(self):
        t = tape(["a"], n_ticks=30)
        ops = RecordingOps()
        schedule = FaultSchedule(
            [RecordingFault(stream="a", at_tick=5, duration_ticks=4)]
        )
        targets = SloTargets(p99_ms=100.0, recovery_s=30.0)
        report = LoadRunner(
            StubGateway(),
            t,
            {"a": rows},
            faults=schedule,
            chaos_ops=ops,
            targets=targets,
        ).run()
        assert ops.injected == ["a"] and ops.cleared == ["a"]
        assert ops.probed == [("a", 0.1, 30.0)]
        (fault,) = report.fault_reports
        assert fault.kind == "recording" and fault.stream == "a"
        assert fault.injected_tick == 5 and fault.cleared_tick == 9
        assert fault.recovery_s == 0.5 and fault.probes == 3 and fault.recovered
        assert fault.details == {"injected": True, "cleared": True}

    def test_schedule_without_ops_is_rejected(self):
        t = tape(["a"])
        schedule = FaultSchedule([RecordingFault(stream="a", at_tick=1)])
        with pytest.raises(ValueError, match="chaos_ops"):
            LoadRunner(StubGateway(), t, {"a": rows}, faults=schedule)

    def test_missing_tenant_source_is_rejected(self):
        t = tape(["a", "b"])
        with pytest.raises(ValueError, match="missing tape tenants"):
            LoadRunner(StubGateway(), t, {"a": rows})
