"""Tests for the O(1)-memory latency sketches."""

from __future__ import annotations

import numpy as np
import pytest

from repro.slo import LatencyAccumulator, QuantileDigest, ReservoirSample


class TestReservoir:
    def test_keeps_everything_under_capacity(self):
        reservoir = ReservoirSample(capacity=10, seed=0)
        reservoir.extend(range(7))
        assert sorted(reservoir.values()) == list(map(float, range(7)))

    def test_bounded_and_deterministic_over_a_long_stream(self):
        first = ReservoirSample(capacity=32, seed=5)
        second = ReservoirSample(capacity=32, seed=5)
        for value in range(10_000):
            first.add(value)
            second.add(value)
        assert len(first) == 32 and first.seen == 10_000
        assert first.values() == second.values()

    def test_seed_changes_the_kept_sample(self):
        streams = []
        for seed in (1, 2):
            reservoir = ReservoirSample(capacity=16, seed=seed)
            reservoir.extend(range(2000))
            streams.append(reservoir.values())
        assert streams[0] != streams[1]


class TestDigest:
    def test_memory_is_bounded_for_long_streams(self):
        rng = np.random.default_rng(0)
        digest = QuantileDigest(max_centroids=64)
        digest.extend(rng.exponential(size=50_000))
        assert digest.n_centroids <= 2 * 64
        assert digest.count == 50_000

    def test_quantiles_are_sharp_at_the_tails(self):
        rng = np.random.default_rng(1)
        values = rng.lognormal(0.0, 1.0, 100_000)
        digest = QuantileDigest()
        digest.extend(values)
        for q, budget in ((0.5, 0.02), (0.99, 0.02), (0.999, 0.05)):
            true = float(np.quantile(values, q))
            assert abs(digest.quantile(q) - true) / true < budget, q

    def test_extremes_are_exact(self):
        rng = np.random.default_rng(2)
        values = rng.normal(size=5_000)
        digest = QuantileDigest(max_centroids=16)
        digest.extend(values)
        assert digest.quantile(0.0) == values.min()
        assert digest.quantile(1.0) == values.max()

    def test_merge_matches_single_digest_closely(self):
        """Per-thread shards merged at the end ~= one digest over the stream."""
        rng = np.random.default_rng(3)
        values = rng.lognormal(0.0, 1.0, 40_000)
        shards = [QuantileDigest(max_centroids=64) for _ in range(4)]
        for index, value in enumerate(values):
            shards[index % 4].add(value)
        merged = QuantileDigest(max_centroids=64)
        for shard in shards:
            merged.merge(shard)
        assert merged.count == 40_000
        for q in (0.5, 0.99):
            true = float(np.quantile(values, q))
            assert abs(merged.quantile(q) - true) / true < 0.05, q

    def test_empty_digest_returns_nan(self):
        assert np.isnan(QuantileDigest().quantile(0.5))

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="q must lie"):
            QuantileDigest().quantile(1.5)


class TestAccumulator:
    def test_quantile_labels_and_mean(self):
        accumulator = LatencyAccumulator()
        for value in (0.001, 0.002, 0.003):
            accumulator.record(value)
        quantiles = accumulator.quantiles_ms()
        assert set(quantiles) == {"p50", "p99", "p999"}
        assert quantiles["p50"] == pytest.approx(2.0, rel=0.5)
        assert accumulator.mean_s == pytest.approx(0.002)
        assert accumulator.count == 3

    def test_merged_sums_counts_and_folds_digests(self):
        shards = [LatencyAccumulator(seed=i) for i in range(3)]
        rng = np.random.default_rng(4)
        for shard in shards:
            for value in rng.exponential(scale=0.01, size=500):
                shard.record(float(value))
        merged = LatencyAccumulator.merged(shards)
        assert merged.count == 1500
        assert merged.total_s == pytest.approx(sum(s.total_s for s in shards))
        assert merged.digest.count == 1500

    def test_merged_of_nothing_is_empty(self):
        merged = LatencyAccumulator.merged([])
        assert merged.count == 0 and np.isnan(merged.mean_s)
